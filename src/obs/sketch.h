// Mergeable, fixed-memory streaming sketches for model observability.
//
// Two sketches, both O(1) per insert, allocation-free after construction,
// and exactly mergeable (merge is associative and commutative, so sharded
// sketches combine to the same answer regardless of merge order):
//
//   * QuantileSketch — a DDSketch-style log-bucketed quantile sketch with
//     bounded *relative* error: for any value inside the representable
//     magnitude range, Quantile(q) returns an estimate within a factor of
//     (1 ± alpha) of some true q'-quantile value. Buckets are a fixed
//     dense array per sign (plus an exact zero bucket), so inserts are a
//     log, a clamp, and an increment — fully deterministic, no RNG.
//   * Hll — HyperLogLog distinct-count sketch (dense 8-bit registers).
//     Standard error is ~1.04/sqrt(2^precision) (~1.6% at the default
//     precision 12), with the linear-counting small-range correction.
//
// Like everything in obs/, this file depends only on the standard
// library (util/ links *on top of* obs/, not the other way around), and
// hashing is done with a local SplitMix64-style mixer rather than
// util/rng.

#ifndef SUPA_OBS_SKETCH_H_
#define SUPA_OBS_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace supa::obs {

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer used to
/// hash node ids (and anything else integral) into Hll.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// DDSketch-style quantile sketch with relative-error guarantee `alpha`.
///
/// A value x with |x| in [gamma^-offset, gamma^offset) lands in bucket
/// ceil(log_gamma|x|) of the matching sign array, where
/// gamma = (1+alpha)/(1-alpha). The bucket midpoint estimate
/// 2*gamma^key/(gamma+1) is within relative error alpha of every value in
/// the bucket. Magnitudes outside the range clamp into the edge buckets
/// (the error bound then degrades; min()/max() stay exact). Exact zeros
/// go to a dedicated bucket; non-finite inserts are counted separately
/// and excluded from quantiles.
class QuantileSketch {
 public:
  /// `alpha` is the relative-error target in (0, 1); `buckets_per_sign`
  /// fixes the memory footprint (two uint64 arrays of this size). The
  /// defaults cover magnitudes ~[2e-18, 5e17] at 1% error in 64 KiB.
  explicit QuantileSketch(double alpha = 0.01,
                          size_t buckets_per_sign = 4096);

  /// Inserts one value. O(1), no allocation.
  void Add(double x);

  /// Adds `other`'s contents into this sketch. Both sketches must have
  /// the same alpha and bucket count; returns false (and leaves this
  /// sketch untouched) otherwise.
  bool Merge(const QuantileSketch& other);

  /// Estimated q-quantile (q clamped to [0,1]) of the finite inserts,
  /// clamped to the exact observed [min, max]. Returns 0 when empty.
  double Quantile(double q) const;

  /// Exact moments over the finite inserts.
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const;
  double max() const;

  /// Non-finite (NaN/Inf) inserts seen and dropped.
  uint64_t non_finite_count() const { return non_finite_count_; }

  double alpha() const { return alpha_; }
  size_t buckets_per_sign() const { return pos_.size(); }

  /// True when `other` has identical (alpha, bucket count) and therefore
  /// can be merged in.
  bool SameShape(const QuantileSketch& other) const;

  /// Forgets all inserts, keeping the configuration.
  void Reset();

 private:
  size_t BucketIndex(double magnitude) const;
  double BucketValue(size_t index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  int offset_;  // bucket index of magnitude 1.0

  std::vector<uint64_t> pos_;
  std::vector<uint64_t> neg_;
  uint64_t zero_count_ = 0;
  uint64_t non_finite_count_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// HyperLogLog distinct-count sketch over pre-hashed or raw 64-bit keys.
class Hll {
 public:
  /// `precision` in [4, 18]: 2^precision one-byte registers. The default
  /// 12 gives 4096 registers and ~1.6% standard error.
  explicit Hll(int precision = 12);

  /// Inserts a raw key (mixed with Mix64 internally).
  void Add(uint64_t key) { AddHash(Mix64(key)); }

  /// Inserts an already well-distributed 64-bit hash.
  void AddHash(uint64_t hash);

  /// Register-wise max merge. Both sketches must share the precision;
  /// returns false (no-op) otherwise.
  bool Merge(const Hll& other);

  /// Bias-corrected cardinality estimate with the linear-counting
  /// small-range correction.
  double Estimate() const;

  int precision() const { return precision_; }
  void Reset();

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace supa::obs

#endif  // SUPA_OBS_SKETCH_H_
