#include "core/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace supa {
namespace {

constexpr uint64_t kMagic = 0x5355504143503031ULL;  // "SUPACP01"

struct Header {
  uint64_t magic = kMagic;
  uint64_t num_nodes = 0;
  uint64_t num_relations = 0;
  uint64_t num_node_types = 0;
  uint64_t dim = 0;
  uint64_t param_count = 0;
  uint64_t adam_step = 0;
};

template <typename T>
Status WriteBlob(std::ofstream& out, const T* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
  if (!out) return Status::IOError("checkpoint write failed");
  return Status::OK();
}

template <typename T>
Status ReadBlob(std::ifstream& in, T* data, size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) return Status::IOError("checkpoint read failed (truncated?)");
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const SupaModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  const EmbeddingStore& store = model.store();
  const SupaModel::Snapshot snap = model.TakeSnapshot();

  Header header;
  header.num_nodes = store.num_nodes();
  header.num_relations = store.num_relations();
  header.num_node_types = store.num_node_types();
  header.dim = static_cast<uint64_t>(store.dim());
  header.param_count = snap.params.size();
  header.adam_step = snap.adam.step;

  // The on-disk format is the canonical *logical* layout, not the live
  // shard-major one: a checkpoint written at any SUPA_SHARDS value is
  // byte-identical and loads into a model with any other shard count.
  std::vector<float> logical(snap.params.size());
  SUPA_RETURN_NOT_OK(WriteBlob(out, &header, 1));
  store.GatherLogical(snap.params.data(), logical.data());
  SUPA_RETURN_NOT_OK(WriteBlob(out, logical.data(), logical.size()));
  store.GatherLogical(snap.adam.m.data(), logical.data());
  SUPA_RETURN_NOT_OK(WriteBlob(out, logical.data(), logical.size()));
  store.GatherLogical(snap.adam.v.data(), logical.data());
  SUPA_RETURN_NOT_OK(WriteBlob(out, logical.data(), logical.size()));
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, SupaModel* model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  Header header;
  SUPA_RETURN_NOT_OK(ReadBlob(in, &header, 1));
  if (header.magic != kMagic) {
    return Status::InvalidArgument(path + " is not a SUPA checkpoint");
  }
  const EmbeddingStore& store = model->store();
  if (header.num_nodes != store.num_nodes() ||
      header.num_relations != store.num_relations() ||
      header.num_node_types != store.num_node_types() ||
      header.dim != static_cast<uint64_t>(store.dim()) ||
      header.param_count != store.size()) {
    return Status::FailedPrecondition(
        "checkpoint layout does not match the model (wrong dataset or dim)");
  }

  SupaModel::Snapshot snap;
  snap.params.resize(header.param_count);
  snap.adam.m.resize(header.param_count);
  snap.adam.v.resize(header.param_count);
  snap.adam.step = header.adam_step;
  // Stored logically (see SaveCheckpoint); scatter into this model's
  // physical shard layout.
  std::vector<float> logical(header.param_count);
  SUPA_RETURN_NOT_OK(ReadBlob(in, logical.data(), logical.size()));
  store.ScatterLogical(logical.data(), snap.params.data());
  SUPA_RETURN_NOT_OK(ReadBlob(in, logical.data(), logical.size()));
  store.ScatterLogical(logical.data(), snap.adam.m.data());
  SUPA_RETURN_NOT_OK(ReadBlob(in, logical.data(), logical.size()));
  store.ScatterLogical(logical.data(), snap.adam.v.data());
  model->RestoreSnapshot(snap);
  return Status::OK();
}

}  // namespace supa
