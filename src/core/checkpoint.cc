#include "core/checkpoint.h"

#include <cstdint>
#include <fstream>

namespace supa {
namespace {

constexpr uint64_t kMagic = 0x5355504143503031ULL;  // "SUPACP01"

struct Header {
  uint64_t magic = kMagic;
  uint64_t num_nodes = 0;
  uint64_t num_relations = 0;
  uint64_t num_node_types = 0;
  uint64_t dim = 0;
  uint64_t param_count = 0;
  uint64_t adam_step = 0;
};

template <typename T>
Status WriteBlob(std::ofstream& out, const T* data, size_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
  if (!out) return Status::IOError("checkpoint write failed");
  return Status::OK();
}

template <typename T>
Status ReadBlob(std::ifstream& in, T* data, size_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) return Status::IOError("checkpoint read failed (truncated?)");
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const SupaModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");

  const EmbeddingStore& store = model.store();
  const SupaModel::Snapshot snap = model.TakeSnapshot();

  Header header;
  header.num_nodes = store.num_nodes();
  header.num_relations = store.num_relations();
  header.num_node_types = store.num_node_types();
  header.dim = static_cast<uint64_t>(store.dim());
  header.param_count = snap.params.size();
  header.adam_step = snap.adam.step;

  SUPA_RETURN_NOT_OK(WriteBlob(out, &header, 1));
  SUPA_RETURN_NOT_OK(WriteBlob(out, snap.params.data(), snap.params.size()));
  SUPA_RETURN_NOT_OK(WriteBlob(out, snap.adam.m.data(), snap.adam.m.size()));
  SUPA_RETURN_NOT_OK(WriteBlob(out, snap.adam.v.data(), snap.adam.v.size()));
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, SupaModel* model) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  Header header;
  SUPA_RETURN_NOT_OK(ReadBlob(in, &header, 1));
  if (header.magic != kMagic) {
    return Status::InvalidArgument(path + " is not a SUPA checkpoint");
  }
  const EmbeddingStore& store = model->store();
  if (header.num_nodes != store.num_nodes() ||
      header.num_relations != store.num_relations() ||
      header.num_node_types != store.num_node_types() ||
      header.dim != static_cast<uint64_t>(store.dim()) ||
      header.param_count != store.size()) {
    return Status::FailedPrecondition(
        "checkpoint layout does not match the model (wrong dataset or dim)");
  }

  SupaModel::Snapshot snap;
  snap.params.resize(header.param_count);
  snap.adam.m.resize(header.param_count);
  snap.adam.v.resize(header.param_count);
  snap.adam.step = header.adam_step;
  SUPA_RETURN_NOT_OK(ReadBlob(in, snap.params.data(), snap.params.size()));
  SUPA_RETURN_NOT_OK(ReadBlob(in, snap.adam.m.data(), snap.adam.m.size()));
  SUPA_RETURN_NOT_OK(ReadBlob(in, snap.adam.v.data(), snap.adam.v.size()));
  model->RestoreSnapshot(snap);
  return Status::OK();
}

}  // namespace supa
