// Sparse AdamW over the contiguous parameter buffer of EmbeddingStore.
//
// Each training edge touches only a handful of parameter rows (the two
// interactive nodes, the influenced nodes' contexts, the negatives, two α
// scalars), so gradients are accumulated in a reusable sparse GradBuffer
// and applied row-wise with lazily-updated first/second moments.
//
// The row index is a purpose-built open-addressing flat table rather than
// std::unordered_map: offsets hash into a power-of-two slot array of dense
// row ids, rows live in insertion order in a flat vector, and clearing
// resets only the touched slots — O(dirty) per training step with zero
// steady-state allocation. Iteration (ForEach) walks the insertion-ordered
// row list, never bucket order, so the visit order is deterministic and
// bit-identical across platforms; this is part of the determinism contract
// the optimizer and delta snapshots rely on.

#ifndef SUPA_CORE_ADAM_H_
#define SUPA_CORE_ADAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace supa {

/// Insertion-ordered flat hash index mapping a parameter offset to a dense
/// row id. Open addressing with linear probing over a power-of-two table;
/// clearing only touches the slots that were actually used.
class RowIndex {
 public:
  struct Entry {
    size_t offset;
    uint32_t len;
    uint32_t slot;  // table slot the entry occupies, for O(dirty) Clear
  };

  /// Returns the dense id for `offset`, inserting a new entry (with `len`)
  /// when absent; `*inserted` reports which. `len` must be stable per
  /// offset.
  uint32_t FindOrInsert(size_t offset, uint32_t len, bool* inserted);

  /// Probe-only lookup: true when `offset` has an entry. Never mutates, so
  /// the ingest dispatcher can test a candidate edge's rows against a
  /// group's accumulated footprint before deciding to admit it.
  bool Contains(size_t offset) const;

  /// Entries in insertion order.
  const std::vector<Entry>& entries() const { return entries_; }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Removes all entries without releasing memory; O(size()).
  void Clear();

 private:
  void Rehash(size_t new_slots);

  static size_t Hash(size_t offset) {
    uint64_t h = static_cast<uint64_t>(offset) * 0x9E3779B97F4A7C15ULL;
    return static_cast<size_t>(h ^ (h >> 32));
  }

  std::vector<uint32_t> table_;  // dense id + 1; 0 = empty
  std::vector<Entry> entries_;
  size_t mask_ = 0;  // table_.size() - 1, 0 when unallocated
};

/// Accumulates gradient rows keyed by parameter offset. Duplicate
/// accumulations into the same row sum, so a node that appears both as an
/// influenced node and a negative sample gets one combined update.
class GradBuffer {
 public:
  /// Returns the accumulation row for [offset, offset + len), zeroed on
  /// first use within the current step. `len` must be stable per offset.
  /// The pointer is invalidated by the next Row/Accumulate call.
  float* Row(size_t offset, size_t len);

  /// Adds `alpha * vec` into the row at `offset`.
  void Accumulate(size_t offset, size_t len, double alpha, const float* vec);

  /// Adds a scalar gradient (len-1 row).
  void AccumulateScalar(size_t offset, double g);

  /// Visits every touched row in insertion order (deterministic — never
  /// hash-bucket order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const auto& entries = index_.entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      fn(entries[i].offset, data_.data() + pos_[i], entries[i].len);
    }
  }

  /// Number of touched rows.
  size_t num_rows() const { return index_.size(); }

  /// Clears touched rows without releasing memory; O(num_rows()).
  void Clear();

 private:
  RowIndex index_;
  std::vector<size_t> pos_;  // row id -> start in data_
  std::vector<float> data_;
};

/// The set of parameter rows touched since the last reset — the "dirty"
/// rows a delta snapshot must copy. Same flat layout as GradBuffer, minus
/// the payload.
class DirtyRowSet {
 public:
  /// Marks [offset, offset + len) dirty (idempotent).
  void Mark(size_t offset, uint32_t len) {
    bool inserted = false;
    index_.FindOrInsert(offset, len, &inserted);
    if (inserted) num_floats_ += len;
  }

  /// Visits every dirty row in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const RowIndex::Entry& e : index_.entries()) fn(e.offset, e.len);
  }

  size_t num_rows() const { return index_.size(); }
  /// Total floats covered by the dirty rows.
  size_t num_floats() const { return num_floats_; }

  void Clear() {
    index_.Clear();
    num_floats_ = 0;
  }

 private:
  RowIndex index_;
  size_t num_floats_ = 0;
};

/// AdamW with decoupled weight decay and a global step counter for bias
/// correction (lazy moments: rows not touched in a step keep stale moments,
/// the standard sparse-Adam approximation).
class SparseAdam {
 public:
  /// `num_params` must equal the EmbeddingStore buffer size.
  SparseAdam(size_t num_params, double lr, double weight_decay,
             double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Optional per-step observability accumulator: squared L2 sums of the
  /// applied parameter change and of the touched rows before/after the
  /// step. Filling it only *reads* values the update already computes —
  /// the parameter math is identical whether or not stats are collected,
  /// so training stays bit-identical with monitoring on or off.
  struct StepStats {
    double sum_update_sq = 0.0;
    double sum_param_sq_before = 0.0;
    double sum_param_sq_after = 0.0;
  };

  /// Applies one optimization step with the accumulated gradients;
  /// minimizes the loss (descends). Increments the global step and marks
  /// every touched row dirty. `stats`, when non-null, accumulates the
  /// step's norms for the model monitor.
  void Step(const GradBuffer& grads, float* params,
            StepStats* stats = nullptr);

  /// Rows a concurrent executor touched, banked for the dispatcher's
  /// in-order dirty merge (DirtyRowSet itself is not thread-safe).
  using BankedDirty = std::vector<std::pair<size_t, uint32_t>>;

  /// Applies the accumulated gradients as optimizer step `step` WITHOUT
  /// advancing the global counter or touching the shared dirty set:
  /// touched rows are appended to `dirty` instead. Same per-row math as
  /// Step() bit-for-bit. This is the multi-writer commit path — the
  /// ingest dispatcher pins each edge's step number at plan time (arrival
  /// order), workers apply their row updates concurrently on disjoint
  /// rows, and the dispatcher advances the counter at commit.
  /// `stats` is per-call (each worker passes its own), so concurrent
  /// executors never share an accumulator.
  void StepAt(uint64_t step, const GradBuffer& grads, float* params,
              BankedDirty* dirty, StepStats* stats = nullptr);

  /// Single 1-float-row step at `step` for deferred α commits. Runs on
  /// the dispatcher, so it marks the row dirty directly. Takes a float
  /// because the serial path accumulates scalar gradients in float
  /// (GradBuffer rows); a double here would break bit-identity.
  void StepScalarAt(uint64_t step, size_t offset, float grad, float* params);

  /// Global step count so far.
  uint64_t step_count() const { return step_; }
  /// Rewinds the step counter (delta-snapshot restore).
  void set_step_count(uint64_t step) { step_ = step; }

  /// Optimizer-state snapshot/rollback, paired with EmbeddingStore's.
  struct State {
    std::vector<float> m;
    std::vector<float> v;
    uint64_t step = 0;
  };
  State Snapshot() const { return State{m_, v_, step_}; }
  void Restore(const State& state);

  /// Rows whose parameters/moments may have changed since the last
  /// ClearDirty(). Maintained by Step(); callers that mutate parameters
  /// outside the optimizer (e.g. the updater's short-term forgetting) must
  /// MarkDirty() the row themselves.
  const DirtyRowSet& dirty_rows() const { return dirty_; }
  void MarkDirty(size_t offset, uint32_t len) { MarkRow(offset, len); }
  void ClearDirty() { dirty_.Clear(); }

  /// -- Checkpoint dirty tracking (durability engine) ------------------
  ///
  /// A second dirty set with an independent lifecycle: `dirty_` is owned
  /// by the delta-snapshot rollback machinery and is cleared/re-based on
  /// every Φ_best restore, while `ckpt_dirty_` accumulates every row
  /// touched since the last durable checkpoint link and is cleared only
  /// by ClearCheckpointDirty() at link-cut time. Off by default so the
  /// hot path pays nothing when durability is not enabled.
  void set_checkpoint_tracking(bool on) { ckpt_tracking_ = on; }
  bool checkpoint_tracking() const { return ckpt_tracking_; }

  /// Rows touched since the last ClearCheckpointDirty(). Meaningless when
  /// checkpoint_dirty_overflow() is set — take a full base instead.
  const DirtyRowSet& checkpoint_dirty_rows() const { return ckpt_dirty_; }

  /// True after a whole-buffer mutation (full State restore, external
  /// bulk load) that row tracking cannot bound; the next checkpoint link
  /// must be a full base.
  bool checkpoint_dirty_overflow() const { return ckpt_overflow_; }
  void MarkAllCheckpointDirty() {
    if (!ckpt_tracking_) return;
    ckpt_overflow_ = true;
    ckpt_dirty_.Clear();
  }
  void ClearCheckpointDirty() {
    ckpt_dirty_.Clear();
    ckpt_overflow_ = false;
  }

  /// Raw moment access for row-wise delta snapshot/restore.
  float* m_data() { return m_.data(); }
  const float* m_data() const { return m_.data(); }
  float* v_data() { return v_.data(); }
  const float* v_data() const { return v_.data(); }

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  /// One row's moment + parameter update at bias corrections (bc1, bc2).
  /// Shared by Step/StepAt/StepScalarAt so every entry point computes
  /// bit-identical floats. `stats` (nullable) accumulates observability
  /// norms without touching the update math.
  void UpdateRow(size_t offset, const float* g, size_t len, double bc1,
                 double bc2, float* params, StepStats* stats);

  /// The single marking point behind Step/StepScalarAt/MarkDirty: keeps
  /// both dirty sets in lock-step so checkpoint tracking can never miss a
  /// row the rollback machinery saw.
  void MarkRow(size_t offset, uint32_t len) {
    dirty_.Mark(offset, len);
    if (ckpt_tracking_ && !ckpt_overflow_) ckpt_dirty_.Mark(offset, len);
  }

  double lr_;
  double weight_decay_;
  double beta1_;
  double beta2_;
  double eps_;
  uint64_t step_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
  DirtyRowSet dirty_;
  DirtyRowSet ckpt_dirty_;
  bool ckpt_tracking_ = false;
  bool ckpt_overflow_ = false;
};

}  // namespace supa

#endif  // SUPA_CORE_ADAM_H_
