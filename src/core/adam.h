// Sparse AdamW over the contiguous parameter buffer of EmbeddingStore.
//
// Each training edge touches only a handful of parameter rows (the two
// interactive nodes, the influenced nodes' contexts, the negatives, two α
// scalars), so gradients are accumulated in a reusable sparse GradBuffer
// and applied row-wise with lazily-updated first/second moments.

#ifndef SUPA_CORE_ADAM_H_
#define SUPA_CORE_ADAM_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace supa {

/// Accumulates gradient rows keyed by parameter offset. Duplicate
/// accumulations into the same row sum, so a node that appears both as an
/// influenced node and a negative sample gets one combined update.
class GradBuffer {
 public:
  /// Returns the accumulation row for [offset, offset + len), zeroed on
  /// first use within the current step. `len` must be stable per offset.
  float* Row(size_t offset, size_t len);

  /// Adds `alpha * vec` into the row at `offset`.
  void Accumulate(size_t offset, size_t len, double alpha, const float* vec);

  /// Adds a scalar gradient (len-1 row).
  void AccumulateScalar(size_t offset, double g);

  /// Visits every touched row.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [offset, slot] : index_) {
      fn(offset, data_.data() + slot.pos, slot.len);
    }
  }

  /// Number of touched rows.
  size_t num_rows() const { return index_.size(); }

  /// Clears touched rows without releasing memory.
  void Clear();

 private:
  struct Slot {
    size_t pos;
    size_t len;
  };
  std::unordered_map<size_t, Slot> index_;
  std::vector<float> data_;
};

/// AdamW with decoupled weight decay and a global step counter for bias
/// correction (lazy moments: rows not touched in a step keep stale moments,
/// the standard sparse-Adam approximation).
class SparseAdam {
 public:
  /// `num_params` must equal the EmbeddingStore buffer size.
  SparseAdam(size_t num_params, double lr, double weight_decay,
             double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8);

  /// Applies one optimization step with the accumulated gradients;
  /// minimizes the loss (descends). Increments the global step.
  void Step(const GradBuffer& grads, float* params);

  /// Global step count so far.
  uint64_t step_count() const { return step_; }

  /// Optimizer-state snapshot/rollback, paired with EmbeddingStore's.
  struct State {
    std::vector<float> m;
    std::vector<float> v;
    uint64_t step = 0;
  };
  State Snapshot() const { return State{m_, v_, step_}; }
  void Restore(const State& state);

  double lr() const { return lr_; }
  void set_lr(double lr) { lr_ = lr; }

 private:
  double lr_;
  double weight_decay_;
  double beta1_;
  double beta2_;
  double eps_;
  uint64_t step_ = 0;
  std::vector<float> m_;
  std::vector<float> v_;
};

}  // namespace supa

#endif  // SUPA_CORE_ADAM_H_
