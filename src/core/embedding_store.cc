#include "core/embedding_store.h"

namespace supa {

EmbeddingStore::EmbeddingStore(size_t num_nodes, size_t num_relations,
                               size_t num_node_types, int dim,
                               double init_scale, Rng& rng)
    : num_nodes_(num_nodes),
      num_relations_(num_relations),
      num_node_types_(num_node_types),
      dim_(dim) {
  const size_t nd = num_nodes_ * static_cast<size_t>(dim_);
  short_off_ = nd;
  ctx_off_ = 2 * nd;
  alpha_off_ = ctx_off_ + nd * num_relations_;
  params_.resize(alpha_off_ + num_node_types_);
  for (size_t i = 0; i < alpha_off_; ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, init_scale));
  }
  // α_o = 0 => drift coefficient σ(α) starts at 0.5.
  for (size_t i = alpha_off_; i < params_.size(); ++i) params_[i] = 0.0f;
}

}  // namespace supa
