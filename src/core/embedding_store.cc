#include "core/embedding_store.h"

#include <utility>

#include "store/shard_map.h"
#include "store/store_options.h"

namespace supa {

EmbeddingStore::EmbeddingStore(size_t num_nodes, size_t num_relations,
                               size_t num_node_types, int dim,
                               double init_scale, Rng& rng) {
  auto map = std::make_shared<const store::NodeShardMap>(
      num_nodes, store::ResolveNumShards(0));
  auto layout = std::make_shared<const store::EmbeddingLayout>(
      std::move(map), num_relations, num_node_types, dim);
  bank_ = std::make_shared<store::EmbeddingBank>(std::move(layout),
                                                 init_scale, rng);
}

EmbeddingStore::EmbeddingStore(std::shared_ptr<store::EmbeddingBank> bank)
    : bank_(std::move(bank)) {}

EmbeddingStore::EmbeddingStore(const EmbeddingStore& other)
    : bank_(std::make_shared<store::EmbeddingBank>(*other.bank_)) {}

EmbeddingStore& EmbeddingStore::operator=(const EmbeddingStore& other) {
  if (this != &other) {
    bank_ = std::make_shared<store::EmbeddingBank>(*other.bank_);
  }
  return *this;
}

}  // namespace supa
