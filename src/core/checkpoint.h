// Binary checkpointing of a trained SUPA model: all embedding parameters
// plus the optimizer state, so a stopped stream can resume exactly where
// it left off (a production requirement for online learning).

#ifndef SUPA_CORE_CHECKPOINT_H_
#define SUPA_CORE_CHECKPOINT_H_

#include <string>

#include "core/model.h"

namespace supa {

/// Writes `model`'s parameters and Adam state to `path`. The file embeds
/// the layout (nodes, relations, node types, dim) for load-time checks.
Status SaveCheckpoint(const SupaModel& model, const std::string& path);

/// Restores parameters and optimizer state into `model`, which must have
/// been constructed with a matching dataset + dim. The model's graph is
/// not part of the checkpoint — replay ObserveEdge or use the original
/// dataset to rebuild it.
Status LoadCheckpoint(const std::string& path, SupaModel* model);

}  // namespace supa

#endif  // SUPA_CORE_CHECKPOINT_H_
