// Compatibility shim: checkpointing moved to the durability engine.
// SaveCheckpoint / LoadCheckpoint now live in dur/checkpoint.h (still in
// namespace supa); include that header directly in new code.

#ifndef SUPA_CORE_CHECKPOINT_H_
#define SUPA_CORE_CHECKPOINT_H_

#include "core/model.h"      // IWYU pragma: export (historical transitive)
#include "dur/checkpoint.h"  // IWYU pragma: export

#endif  // SUPA_CORE_CHECKPOINT_H_
