// The SUPA model (§III): relation-specific update + time-aware propagation
// over influenced graphs, trained per-edge with the combined loss of Eq. 13
// and sparse AdamW. All gradients are closed-form (every loss is a logistic
// loss over a dot product), so no autodiff framework is needed.

#ifndef SUPA_CORE_MODEL_H_
#define SUPA_CORE_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adam.h"
#include "core/config.h"
#include "core/durability.h"
#include "core/embedding_store.h"
#include "core/sampler.h"
#include "data/dataset.h"
#include "store/graph_store.h"
#include "store/snapshot.h"
#include "util/alias_table.h"

namespace supa {

/// Per-edge training diagnostics.
struct TrainStats {
  double loss_inter = 0.0;
  double loss_prop = 0.0;
  double loss_neg = 0.0;
  /// Number of non-terminated propagation hops.
  size_t prop_steps = 0;

  double total() const { return loss_inter + loss_prop + loss_neg; }
};

/// Per-call switches for one TrainEdge step, layered on top of the model's
/// SupaConfig (a loss runs only when both the config and the options enable
/// it). This is how DeleteEdge suppresses the interaction loss without
/// mutating the model's configuration.
struct TrainOptions {
  bool use_inter_loss = true;
};

/// A banked training step (DESIGN.md §13). Two pipelines share it:
///
///   * kStrict: PlanEdge banks everything TrainEdge consumes from the RNG
///     stream and the graph in arrival order; ExecutePlan (any thread)
///     applies row updates via SparseAdam::StepAt under the group lease;
///     CommitPlan folds the banked side effects in arrival order.
///     Bit-identical to the serial trainer.
///   * kFast: PlanEdgeDeferred only validates and banks graph reads; the
///     sampling moves into ExecutePlanDeferred with a per-step
///     counter-based RNG so workers sample and compute gradients in
///     parallel against the frozen group-start state (reads only); the
///     gradients land in `grads` and CommitPlanDeferred applies the
///     ordinary serial optimizer step in arrival order.
struct EdgePlan {
  TemporalEdge edge;
  TrainOptions options;
  /// Optimizer step number this edge commits as (arrival order; the
  /// serial trainer's Step() would have assigned exactly this number).
  uint64_t step = 0;
  /// Last-active timestamps at plan time — the serial trainer reads them
  /// before the edge is observed.
  Timestamp last_active_u = kNeverActive;
  Timestamp last_active_v = kNeverActive;
  /// Sampled influenced graph: walks from u first, then from v.
  WalkBuffer walks;
  size_t u_walk_count = 0;
  /// Banked negative draws, num_neg for u then num_neg for v;
  /// kInvalidNode marks an exhausted draw (the loss loop skips it exactly
  /// like the serial path).
  std::vector<NodeId> negatives;

  // -- Scheduling footprint (PlanEdge with want_footprint only) --
  /// Every embedding row the step writes (each dim floats; the α tail is
  /// excluded — α commits are serialized by the dispatcher). Walk rows
  /// are included even when propagation terminates early, so the
  /// footprint is a conservative superset of the rows actually touched.
  std::vector<size_t> rows;
  /// Shards covered by `rows`, widened with shard 0 whenever the step may
  /// carry α gradients (the α tail rides with shard 0's write ordering).
  uint64_t shard_mask = 0;

  // -- Execution outputs (ExecutePlan / ExecutePlanDeferred) --
  TrainStats stats;
  /// Rows to mark dirty at commit.
  SparseAdam::BankedDirty dirty;
  /// Deferred α gradients (offset, float-accumulated like GradBuffer's
  /// scalar rows), applied by CommitPlan at this plan's step number.
  /// (kStrict only — the deferred pipeline routes α through `grads`.)
  std::vector<std::pair<size_t, float>> alpha_grads;

  // -- Deferred-apply outputs (kFast; ExecutePlanDeferred) --
  /// The step's full gradient accumulation, applied by
  /// CommitPlanDeferred via the ordinary serial optimizer step.
  GradBuffer grads;
  /// Banked forgetting factors γ = g(σ(α)·Δ) for src/dst: the h^S decay
  /// is scaled into the live rows at commit (in arrival order) rather
  /// than during execution, so shared endpoints lose no updates.
  double gamma_u = 1.0;
  double gamma_v = 1.0;

  // -- Model-monitor sample (kStrict; banked by ExecutePlan) --
  /// True when the executor collected monitor signals; CommitPlan then
  /// records them on the dispatcher, in arrival order, so the monitor's
  /// mutex never sits on a worker's critical path. Norms are L2 over the
  /// step's gradient rows; the dispatcher-committed α tail is excluded.
  bool mon_sampled = false;
  double mon_grad_norm = 0.0;
  double mon_step_norm = 0.0;
  double mon_row_norm_before = 0.0;
  double mon_row_norm_after = 0.0;
};

/// A trainable SUPA instance bound to one dataset's node universe, schema,
/// and metapath set. The model owns its incrementally-built DynamicGraph;
/// callers drive the stream with ObserveEdge (graph insertion) and
/// TrainEdge (gradient step) — InsLearnTrainer does this per Algorithm 1.
class SupaModel {
 public:
  /// Builds an untrained model. The dataset supplies |V|, node types, the
  /// schema, and the (symmetric) metapath schema set.
  SupaModel(const Dataset& data, SupaConfig config);

  /// Inserts an edge into the model's graph, advances last-active
  /// timestamps, and refreshes the negative table periodically. Call once
  /// per stream edge, after its first TrainEdge.
  Status ObserveEdge(const TemporalEdge& e);

  /// One SUPA training step on edge e: sample the influenced graph, update
  /// the interactive nodes (Eq. 5–6, with persistent short-term
  /// forgetting), propagate (Eq. 8–10), add negatives (Eq. 12), and apply
  /// one AdamW step on all touched parameters. Does not insert e into the
  /// graph.
  Result<TrainStats> TrainEdge(const TemporalEdge& e,
                               const TrainOptions& options = TrainOptions{});

  /// Edge deletion (§III-A): removes the most recent (u, v, r) edge from
  /// the graph so walks no longer traverse it, and runs one training step
  /// at time `t` treating the deletion as an interaction signal (the
  /// paper: "edge deletion can be viewed as a special relation ... and
  /// thus shares the same process procedure with edge addition").
  Result<TrainStats> DeleteEdge(NodeId u, NodeId v, EdgeTypeId r,
                                Timestamp t);

  /// Durability replay of a logged removal (dur/recovery.h): undoes the
  /// graph edge and decrements degrees, WITHOUT the deletion's training
  /// step (its parameter effects live in the checkpoint being recovered)
  /// and without re-logging. Not for general use.
  Status ReplayRemoveEdge(NodeId u, NodeId v, EdgeTypeId r);

  /// Recommendation score γ(u, v, r) = h^r_u · h^r_v (Eq. 14–15). Reads
  /// the *live* store — training-internal use (validation runs while the
  /// trainer is parked between batches). Concurrent readers must score on
  /// a snapshot instead.
  double Score(NodeId u, NodeId v, EdgeTypeId r) const;

  /// Writes h^r_v = ½(h^L + h^S + c^r) into `out` (dim floats). Live-store
  /// read; same contract as Score.
  void FinalEmbedding(NodeId v, EdgeTypeId r, float* out) const;

  /// Publishes (or reuses) the storage engine's current epoch. The view
  /// is immutable and never blocks subsequent training.
  std::shared_ptr<const store::StoreSnapshot> AcquireSnapshot() const;

  /// Score / final embedding evaluated against an epoch snapshot rather
  /// than the live store — the read path for eval, serving, and scrapes.
  /// Bit-identical to Score/FinalEmbedding on a snapshot of the same
  /// state.
  double ScoreOn(const store::StoreSnapshot& snapshot, NodeId u, NodeId v,
                 EdgeTypeId r) const;
  void FinalEmbeddingOn(const store::StoreSnapshot& snapshot, NodeId v,
                        EdgeTypeId r, float* out) const;

  /// Rebuilds the degree^{3/4} negative-sampling distribution from current
  /// degrees (uniform before any edge is observed).
  Status RebuildNegativeTable();

  /// Full parameter + optimizer snapshot (Algorithm 1's Φ_best).
  struct Snapshot {
    std::vector<float> params;
    SparseAdam::State adam;
  };
  Snapshot TakeSnapshot() const;
  void RestoreSnapshot(const Snapshot& snapshot);

  /// O(dirty) snapshot: the rows touched since the current baseline plus a
  /// shared handle to that baseline. Algorithm 1 snapshots every
  /// I_valid-th iteration but only O(touched-rows) parameters actually
  /// change between snapshots, so copying the dirty rows instead of the
  /// whole buffer turns an O(|V|·(2+R)·d) copy into an O(dirty) one.
  ///
  /// Protocol:
  ///   * The model keeps one full baseline copy (re-established lazily and
  ///     whenever the dirty set outgrows kRebaseDirtyFraction of the
  ///     buffer, which amortizes the occasional full copy).
  ///   * TakeDeltaSnapshot records every row dirty since that baseline.
  ///   * RestoreDeltaSnapshot reverts currently-dirty rows to the baseline
  ///     and re-applies the snapshot's rows — O(dirty) when the snapshot
  ///     shares the live baseline (compared by shared_ptr identity, which
  ///     both sides keep alive, so it cannot alias a recycled object), and
  ///     a full copy from the snapshot's own baseline otherwise, so stale
  ///     snapshots restore correctly after a re-base or a full
  ///     RestoreSnapshot.
  ///
  /// Debug builds additionally embed a full copy in every delta snapshot
  /// and assert after restore that the delta path reproduced it
  /// bit-for-bit.
  struct DeltaSnapshot {
    std::shared_ptr<const Snapshot> baseline;
    /// Dirty rows at snapshot time: row i covers
    /// [offsets[i], offsets[i] + lens[i]) and its payload lives at the
    /// running prefix position in params/m/v.
    std::vector<size_t> offsets;
    std::vector<uint32_t> lens;
    std::vector<float> params;
    std::vector<float> m;
    std::vector<float> v;
    uint64_t adam_step = 0;
    /// Filled only in debug builds (determinism cross-check).
    Snapshot debug_full;
  };
  DeltaSnapshot TakeDeltaSnapshot();
  void RestoreDeltaSnapshot(const DeltaSnapshot& snapshot);

  const DynamicGraph& graph() const { return *graph_; }
  DynamicGraph& mutable_graph() { return *graph_; }
  const SupaConfig& config() const { return config_; }
  EmbeddingStore& store() { return *store_; }
  const EmbeddingStore& store() const { return *store_; }

  /// Attaches (or detaches, with nullptr) the durability edge log. Every
  /// committed graph mutation — ObserveEdge inserts and DeleteEdge
  /// removals, from both the serial trainer and the ingest dispatcher — is
  /// reported in commit order. Not owned.
  void set_edge_log(EdgeLogSink* sink) { edge_log_ = sink; }
  EdgeLogSink* edge_log() const { return edge_log_; }

  /// The model's sampling stream, exposed so durable checkpoints can
  /// resume it mid-flight.
  Rng::State rng_state() const { return rng_.state(); }
  void set_rng_state(const Rng::State& st) { rng_.set_state(st); }

  /// The optimizer, exposed for the durability layer's dirty-row capture
  /// (checkpoint_dirty_rows, moment buffers). Training-path callers go
  /// through TrainEdge / the plan pipeline, never this.
  SparseAdam& optimizer() { return *adam_; }
  const SparseAdam& optimizer() const { return *adam_; }

  /// The storage engine holding this model's graph and embedding shards.
  store::GraphStore& graph_store() { return *graph_store_; }
  const store::GraphStore& graph_store() const { return *graph_store_; }

 private:
  /// Per-interactive-node updater scratch (Eq. 5).
  struct UpdateContext {
    NodeId node = kInvalidNode;
    size_t alpha_offset = 0;
    double delta = 0.0;       // Δ_V
    double decay_input = 0.0; // σ(α)·Δ
    double gamma = 1.0;       // g(σ(α)·Δ)
    std::vector<float> short_before;  // h^S prior to forgetting
    std::vector<float> short_scaled;  // γ·h^S when the decay is deferred
    std::vector<float> h_star;        // target embedding
    std::vector<float> grad_h_star;   // accumulated dL/dh*
  };

 public:
  /// Per-executor reusable scratch for ExecutePlan. One per writer thread;
  /// never shared across concurrent executions.
  struct ExecScratch {
    GradBuffer grads;
    UpdateContext ctx_u;
    UpdateContext ctx_v;
    std::vector<float> hr_u;
    std::vector<float> hr_v;
  };

  // -- Plan/execute/commit split (multi-writer ingest; DESIGN.md §13) --

  /// Stage 1 of a training step: validates the edge and banks everything
  /// the step consumes from the RNG stream and the graph, in exactly the
  /// serial trainer's draw order (walks first, then negatives). Must run
  /// on the dispatcher thread in arrival order; never writes embeddings.
  /// With `want_footprint`, additionally records the step's embedding-row
  /// write set and conservative shard mask for the group scheduler.
  Status PlanEdge(const TemporalEdge& e, const TrainOptions& options,
                  bool want_footprint, EdgePlan* plan);

  /// Stage 2: the banked step's embedding math. Touches only embedding
  /// rows — never the graph, the RNG, or the optimizer's counters — so
  /// plans with disjoint row footprints may execute concurrently, each
  /// with its own scratch. Row updates apply via SparseAdam::StepAt at
  /// plan->step; dirty rows and α gradients are banked into the plan for
  /// CommitPlan. The caller must hold a write lease covering
  /// plan->shard_mask.
  void ExecutePlan(EdgePlan* plan, ExecScratch* scratch);

  /// Stage 3, dispatcher-side, in arrival order: merges the banked dirty
  /// rows, applies the deferred α gradients at the plan's pinned step
  /// number, and advances the optimizer's step counter.
  void CommitPlan(const EdgePlan& plan);

  // -- Deferred-apply pipeline (kFast; DESIGN.md §13) --

  /// kFast stage 1: validates the edge and banks only what must be read
  /// before observation (last-active timestamps) plus the negative table
  /// rebuild. Consumes nothing from the model's RNG stream — sampling is
  /// deferred to ExecutePlanDeferred under a per-step counter-based seed,
  /// so results are independent of the writer count (but diverge from the
  /// serial trainer's draw order). Dispatcher thread, arrival order.
  Status PlanEdgeDeferred(const TemporalEdge& e, const TrainOptions& options,
                          EdgePlan* plan);

  /// kFast stage 2, any thread, no lease required: samples the influenced
  /// graph and negatives from Rng(seed ⊕ plan->step) against the frozen
  /// group-start graph, then computes the step's full gradient into
  /// plan->grads. Reads embeddings, never writes them — the forgetting
  /// decay is banked as plan->gamma_{u,v} and all gradients stay in the
  /// plan until commit.
  void ExecutePlanDeferred(EdgePlan* plan, ExecScratch* scratch);

  /// kFast stage 3, dispatcher-side, arrival order, under a store lease:
  /// scales the banked forgetting into the live h^S rows, merges dirty
  /// rows, and applies plan->grads via the ordinary serial optimizer step
  /// (which advances the step counter to exactly plan->step).
  void CommitPlanDeferred(const EdgePlan& plan);

  /// Optimizer step counter — the ingest dispatcher pins per-edge step
  /// numbers starting from here.
  uint64_t optimizer_step_count() const { return adam_->step_count(); }

 private:
  /// Where the training-step math routes its side effects: straight into
  /// the optimizer (serial TrainEdge) or banked into the plan (pipeline).
  struct MathSink {
    /// Dirty sink for pre-optimizer row writes (updater forgetting);
    /// null → adam_->MarkDirty directly.
    SparseAdam::BankedDirty* dirty = nullptr;
    /// α gradient sink; null → GradBuffer::AccumulateScalar (serial).
    std::vector<std::pair<size_t, float>>* alpha = nullptr;
    /// Gradient accumulator override; null → scratch->grads (serial and
    /// kStrict). The deferred pipeline points this at plan->grads.
    GradBuffer* grads = nullptr;
    /// Deferred forgetting sinks: when set, RunUpdater banks γ here and
    /// decays a scratch copy of h^S instead of the live row (the scale is
    /// applied at commit). Null → in-place decay (serial and kStrict).
    double* gamma_u = nullptr;
    double* gamma_v = nullptr;
  };

  /// Eq. 5: applies forgetting to h^S (in place, or — when
  /// `deferred_gamma` is non-null — to a scratch copy, banking γ for the
  /// commit-time scale) and fills `ctx`. `last_active` is the banked
  /// pre-observation timestamp.
  void RunUpdater(NodeId node, Timestamp t, Timestamp last_active,
                  UpdateContext* ctx, const MathSink& sink,
                  double* deferred_gamma);

  /// Routes dL/dh* into h^L, h^S, and α gradients.
  void BackpropUpdater(const UpdateContext& ctx, GradBuffer& grads,
                       const MathSink& sink);

  /// The full per-edge loss/gradient computation over a banked plan.
  /// Clears scratch->grads, fills it (and the sink's banked outputs), and
  /// returns the step's stats. Shared verbatim by the serial TrainEdge
  /// and ExecutePlan — the two differ only in how gradients are applied.
  TrainStats RunEdgeMath(const EdgePlan& plan, ExecScratch* scratch,
                         const MathSink& sink);

  /// Maps an edge type to its context-embedding slot (shared-context
  /// ablation collapses all relations onto slot 0).
  EdgeTypeId CtxRel(EdgeTypeId r) const {
    return config_.shared_context ? static_cast<EdgeTypeId>(0) : r;
  }

  /// Samples one negative node id != u, v from the model's RNG stream.
  NodeId SampleNegative(NodeId u, NodeId v);
  /// Same, drawing from an external RNG (the deferred pipeline's
  /// per-step stream). Thread-safe on a frozen negative table.
  NodeId SampleNegative(NodeId u, NodeId v, Rng& rng) const;

  /// Drops the delta baseline (after a whole-buffer restore) so stale
  /// delta snapshots take the full-copy fallback.
  void InvalidateDeltaBaseline();

  SupaConfig config_;
  /// Durability edge log (null when durability is off). Not owned.
  EdgeLogSink* edge_log_ = nullptr;
  /// The engine; graph_ and store_ are facades sharing its state.
  std::shared_ptr<store::GraphStore> graph_store_;
  std::unique_ptr<DynamicGraph> graph_;
  std::unique_ptr<EmbeddingStore> store_;
  std::unique_ptr<InfluencedGraphSampler> sampler_;
  std::unique_ptr<SparseAdam> adam_;
  Rng rng_;

  std::vector<double> degrees_;
  AliasTable neg_table_;
  size_t observed_since_rebuild_ = 0;

  // delta-snapshot baseline (see DeltaSnapshot)
  std::shared_ptr<const Snapshot> delta_baseline_;

  // reusable scratch (serial TrainEdge path; the pipeline owns its own
  // plans and per-writer scratches)
  EdgePlan serial_plan_;
  ExecScratch serial_scratch_;
  std::vector<double> neg_weight_scratch_;
};

}  // namespace supa

#endif  // SUPA_CORE_MODEL_H_
