// The SUPA model (§III): relation-specific update + time-aware propagation
// over influenced graphs, trained per-edge with the combined loss of Eq. 13
// and sparse AdamW. All gradients are closed-form (every loss is a logistic
// loss over a dot product), so no autodiff framework is needed.

#ifndef SUPA_CORE_MODEL_H_
#define SUPA_CORE_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adam.h"
#include "core/config.h"
#include "core/embedding_store.h"
#include "core/sampler.h"
#include "data/dataset.h"
#include "store/graph_store.h"
#include "store/snapshot.h"
#include "util/alias_table.h"

namespace supa {

/// Per-edge training diagnostics.
struct TrainStats {
  double loss_inter = 0.0;
  double loss_prop = 0.0;
  double loss_neg = 0.0;
  /// Number of non-terminated propagation hops.
  size_t prop_steps = 0;

  double total() const { return loss_inter + loss_prop + loss_neg; }
};

/// Per-call switches for one TrainEdge step, layered on top of the model's
/// SupaConfig (a loss runs only when both the config and the options enable
/// it). This is how DeleteEdge suppresses the interaction loss without
/// mutating the model's configuration.
struct TrainOptions {
  bool use_inter_loss = true;
};

/// A trainable SUPA instance bound to one dataset's node universe, schema,
/// and metapath set. The model owns its incrementally-built DynamicGraph;
/// callers drive the stream with ObserveEdge (graph insertion) and
/// TrainEdge (gradient step) — InsLearnTrainer does this per Algorithm 1.
class SupaModel {
 public:
  /// Builds an untrained model. The dataset supplies |V|, node types, the
  /// schema, and the (symmetric) metapath schema set.
  SupaModel(const Dataset& data, SupaConfig config);

  /// Inserts an edge into the model's graph, advances last-active
  /// timestamps, and refreshes the negative table periodically. Call once
  /// per stream edge, after its first TrainEdge.
  Status ObserveEdge(const TemporalEdge& e);

  /// One SUPA training step on edge e: sample the influenced graph, update
  /// the interactive nodes (Eq. 5–6, with persistent short-term
  /// forgetting), propagate (Eq. 8–10), add negatives (Eq. 12), and apply
  /// one AdamW step on all touched parameters. Does not insert e into the
  /// graph.
  Result<TrainStats> TrainEdge(const TemporalEdge& e,
                               const TrainOptions& options = TrainOptions{});

  /// Edge deletion (§III-A): removes the most recent (u, v, r) edge from
  /// the graph so walks no longer traverse it, and runs one training step
  /// at time `t` treating the deletion as an interaction signal (the
  /// paper: "edge deletion can be viewed as a special relation ... and
  /// thus shares the same process procedure with edge addition").
  Result<TrainStats> DeleteEdge(NodeId u, NodeId v, EdgeTypeId r,
                                Timestamp t);

  /// Recommendation score γ(u, v, r) = h^r_u · h^r_v (Eq. 14–15). Reads
  /// the *live* store — training-internal use (validation runs while the
  /// trainer is parked between batches). Concurrent readers must score on
  /// a snapshot instead.
  double Score(NodeId u, NodeId v, EdgeTypeId r) const;

  /// Writes h^r_v = ½(h^L + h^S + c^r) into `out` (dim floats). Live-store
  /// read; same contract as Score.
  void FinalEmbedding(NodeId v, EdgeTypeId r, float* out) const;

  /// Publishes (or reuses) the storage engine's current epoch. The view
  /// is immutable and never blocks subsequent training.
  std::shared_ptr<const store::StoreSnapshot> AcquireSnapshot() const;

  /// Score / final embedding evaluated against an epoch snapshot rather
  /// than the live store — the read path for eval, serving, and scrapes.
  /// Bit-identical to Score/FinalEmbedding on a snapshot of the same
  /// state.
  double ScoreOn(const store::StoreSnapshot& snapshot, NodeId u, NodeId v,
                 EdgeTypeId r) const;
  void FinalEmbeddingOn(const store::StoreSnapshot& snapshot, NodeId v,
                        EdgeTypeId r, float* out) const;

  /// Rebuilds the degree^{3/4} negative-sampling distribution from current
  /// degrees (uniform before any edge is observed).
  Status RebuildNegativeTable();

  /// Full parameter + optimizer snapshot (Algorithm 1's Φ_best).
  struct Snapshot {
    std::vector<float> params;
    SparseAdam::State adam;
  };
  Snapshot TakeSnapshot() const;
  void RestoreSnapshot(const Snapshot& snapshot);

  /// O(dirty) snapshot: the rows touched since the current baseline plus a
  /// shared handle to that baseline. Algorithm 1 snapshots every
  /// I_valid-th iteration but only O(touched-rows) parameters actually
  /// change between snapshots, so copying the dirty rows instead of the
  /// whole buffer turns an O(|V|·(2+R)·d) copy into an O(dirty) one.
  ///
  /// Protocol:
  ///   * The model keeps one full baseline copy (re-established lazily and
  ///     whenever the dirty set outgrows kRebaseDirtyFraction of the
  ///     buffer, which amortizes the occasional full copy).
  ///   * TakeDeltaSnapshot records every row dirty since that baseline.
  ///   * RestoreDeltaSnapshot reverts currently-dirty rows to the baseline
  ///     and re-applies the snapshot's rows — O(dirty) when the snapshot
  ///     shares the live baseline (compared by shared_ptr identity, which
  ///     both sides keep alive, so it cannot alias a recycled object), and
  ///     a full copy from the snapshot's own baseline otherwise, so stale
  ///     snapshots restore correctly after a re-base or a full
  ///     RestoreSnapshot.
  ///
  /// Debug builds additionally embed a full copy in every delta snapshot
  /// and assert after restore that the delta path reproduced it
  /// bit-for-bit.
  struct DeltaSnapshot {
    std::shared_ptr<const Snapshot> baseline;
    /// Dirty rows at snapshot time: row i covers
    /// [offsets[i], offsets[i] + lens[i]) and its payload lives at the
    /// running prefix position in params/m/v.
    std::vector<size_t> offsets;
    std::vector<uint32_t> lens;
    std::vector<float> params;
    std::vector<float> m;
    std::vector<float> v;
    uint64_t adam_step = 0;
    /// Filled only in debug builds (determinism cross-check).
    Snapshot debug_full;
  };
  DeltaSnapshot TakeDeltaSnapshot();
  void RestoreDeltaSnapshot(const DeltaSnapshot& snapshot);

  const DynamicGraph& graph() const { return *graph_; }
  DynamicGraph& mutable_graph() { return *graph_; }
  const SupaConfig& config() const { return config_; }
  EmbeddingStore& store() { return *store_; }
  const EmbeddingStore& store() const { return *store_; }

  /// The storage engine holding this model's graph and embedding shards.
  store::GraphStore& graph_store() { return *graph_store_; }
  const store::GraphStore& graph_store() const { return *graph_store_; }

 private:
  /// Per-interactive-node updater scratch (Eq. 5).
  struct UpdateContext {
    NodeId node = kInvalidNode;
    size_t alpha_offset = 0;
    double delta = 0.0;       // Δ_V
    double decay_input = 0.0; // σ(α)·Δ
    double gamma = 1.0;       // g(σ(α)·Δ)
    std::vector<float> short_before;  // h^S prior to forgetting
    std::vector<float> h_star;        // target embedding
    std::vector<float> grad_h_star;   // accumulated dL/dh*
  };

  /// Eq. 5: applies forgetting to h^S in place and fills `ctx`.
  void RunUpdater(NodeId node, Timestamp t, UpdateContext* ctx);

  /// Routes dL/dh* into h^L, h^S, and α gradients.
  void BackpropUpdater(const UpdateContext& ctx);

  /// Maps an edge type to its context-embedding slot (shared-context
  /// ablation collapses all relations onto slot 0).
  EdgeTypeId CtxRel(EdgeTypeId r) const {
    return config_.shared_context ? static_cast<EdgeTypeId>(0) : r;
  }

  /// Samples one negative node id != u, v.
  NodeId SampleNegative(NodeId u, NodeId v);

  /// Drops the delta baseline (after a whole-buffer restore) so stale
  /// delta snapshots take the full-copy fallback.
  void InvalidateDeltaBaseline();

  SupaConfig config_;
  /// The engine; graph_ and store_ are facades sharing its state.
  std::shared_ptr<store::GraphStore> graph_store_;
  std::unique_ptr<DynamicGraph> graph_;
  std::unique_ptr<EmbeddingStore> store_;
  std::unique_ptr<InfluencedGraphSampler> sampler_;
  std::unique_ptr<SparseAdam> adam_;
  GradBuffer grads_;
  Rng rng_;

  std::vector<double> degrees_;
  AliasTable neg_table_;
  size_t observed_since_rebuild_ = 0;

  // delta-snapshot baseline (see DeltaSnapshot)
  std::shared_ptr<const Snapshot> delta_baseline_;

  // reusable scratch
  UpdateContext ctx_u_;
  UpdateContext ctx_v_;
  std::vector<float> scratch_hr_u_;
  std::vector<float> scratch_hr_v_;
  WalkBuffer walk_arena_;
  std::vector<double> neg_weight_scratch_;
};

}  // namespace supa

#endif  // SUPA_CORE_MODEL_H_
