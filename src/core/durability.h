// Core-side durability interfaces (DESIGN.md §16).
//
// The durability engine lives in src/dur/, a layer *above* core, so core
// cannot name its types. Instead core exposes two narrow hook interfaces —
// an edge log the model calls on every graph mutation, and a checkpoint
// sink the trainer calls at batch boundaries — plus the cursor struct that
// pins everything a resumed trainer needs to continue bit-identically.
// When no sink is attached (the default), every hook site is a null-check
// and training is byte-for-byte the pre-durability computation.

#ifndef SUPA_CORE_DURABILITY_H_
#define SUPA_CORE_DURABILITY_H_

#include <cstdint>

#include "graph/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace supa {

class SupaModel;

/// Everything beyond the parameter/optimizer state that a resumed trainer
/// needs to continue the stream exactly where the crashed one left off.
/// Serialized (packed little-endian) into each manifest link.
struct TrainerCursor {
  /// WAL records covered by the checkpoint link this cursor rides on:
  /// recovery replays records [0, wal_seq) and discards the rest.
  uint64_t wal_seq = 0;
  /// Stream index the trainer resumes at (the first untrained edge).
  uint64_t next_edge_index = 0;
  /// Batches completed so far (drives periodic-cut cadence on resume).
  uint64_t batches_done = 0;
  /// The model's sampling stream (walks + negatives) mid-flight.
  Rng::State model_rng = {};
  /// The trainer's validation-scoring stream mid-flight.
  Rng::State valid_rng = {};
};

/// Receives every committed graph mutation, in commit order, on the thread
/// that commits it (the trainer or the ingest dispatcher — never
/// concurrently). The durability engine implements this with a WAL append;
/// the graph can then be rebuilt from the log alone, closing the
/// long-standing "the model's graph is not part of the checkpoint" gap.
class EdgeLogSink {
 public:
  virtual ~EdgeLogSink() = default;

  /// An edge was inserted (SupaModel::ObserveEdge succeeded).
  virtual void LogAdd(const TemporalEdge& e) = 0;

  /// An edge was removed (SupaModel::DeleteEdge's graph mutation
  /// succeeded). `t` is the deletion's interaction time.
  virtual void LogRemove(NodeId u, NodeId v, EdgeTypeId r, Timestamp t) = 0;
};

/// Called by the trainer at durable cut points — batch boundaries, where
/// no Φ_best snapshot is in flight and the validation edges of the batch
/// have been observed. The engine captures a checkpoint link (O(dirty)
/// rows) synchronously and does the file IO in the background, so training
/// resumes immediately.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;

  /// Captures a durable link for the model's current state. `cursor`
  /// describes the stream position this state corresponds to (wal_seq is
  /// filled in by the engine from its own append count).
  virtual Status OnCheckpoint(SupaModel& model, const TrainerCursor& cursor) = 0;
};

}  // namespace supa

#endif  // SUPA_CORE_DURABILITY_H_
