// InsLearn (Algorithm 1): single-pass incremental training of SUPA.
//
// The edge stream is cut into sequential batches of S_batch edges; within
// each batch the last S_valid edges form the validation set. The model is
// trained up to N_iter iterations per batch, validated every I_valid
// iterations, early-stopped with patience μ, and rolled back to the best
// validated snapshot before the next batch. The SUPA_w/oIns ablation
// (conventional multi-epoch training) is available via
// InsLearnConfig::single_pass = false.

#ifndef SUPA_CORE_INSLEARN_H_
#define SUPA_CORE_INSLEARN_H_

#include <vector>

#include "core/durability.h"
#include "core/model.h"
#include "data/splits.h"

namespace supa {

/// Summary of one training run.
struct InsLearnReport {
  /// Number of batches processed (1 for the w/oIns workflow).
  size_t num_batches = 0;
  /// Best validation MRR per batch (or per epoch for w/oIns).
  std::vector<double> batch_scores;
  /// Total TrainEdge invocations.
  size_t train_steps = 0;
  /// Total within-batch iterations executed.
  size_t iterations = 0;

  // Per-phase wall-clock breakdown (seconds), for the runtime benches.
  /// Time inside TrainEdge calls.
  double train_seconds = 0.0;
  /// Time computing validation MRR.
  double valid_seconds = 0.0;
  /// Time taking + restoring Φ_best snapshots.
  double snapshot_seconds = 0.0;
  /// Time inserting edges into the graph (ObserveEdge).
  double observe_seconds = 0.0;
  /// Time inside durable checkpoint cuts (CheckpointSink::OnCheckpoint).
  double checkpoint_seconds = 0.0;
};

/// Drives SupaModel training over an edge range of a dataset.
class InsLearnTrainer {
 public:
  explicit InsLearnTrainer(InsLearnConfig config) : config_(config) {}

  /// Trains `model` on edges [range.begin, range.end) of `data`. The model
  /// must have been constructed for this dataset and not have observed the
  /// range yet.
  ///
  /// `resume` (single-pass workflow only) continues a previous run from a
  /// durable cursor: training restarts at cursor.next_edge_index with the
  /// validation RNG stream restored, producing the exact batch sequence —
  /// and bit-identical final state — the uninterrupted run would have. The
  /// model must already hold the cursor's state (dur::Recover does this).
  Result<InsLearnReport> Train(SupaModel& model, const Dataset& data,
                               EdgeRange range,
                               const TrainerCursor* resume = nullptr);

  const InsLearnConfig& config() const { return config_; }

 private:
  /// Validation score θ: mean reciprocal rank of each validation edge's
  /// destination against `valid_negatives` sampled same-type negatives.
  /// Draws one value from `rng` to key the round, then ranks the edges on
  /// up to `config_.threads` workers with deterministic sharding — the
  /// score is bit-identical at every thread count.
  double ValidationScore(const SupaModel& model, const Dataset& data,
                         size_t begin, size_t end, Rng& rng) const;

  Result<InsLearnReport> TrainSinglePass(SupaModel& model,
                                         const Dataset& data, EdgeRange range,
                                         const TrainerCursor* resume);
  Result<InsLearnReport> TrainFullPass(SupaModel& model, const Dataset& data,
                                       EdgeRange range);

  InsLearnConfig config_;
};

}  // namespace supa

#endif  // SUPA_CORE_INSLEARN_H_
