#include "core/model.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/math_utils.h"

namespace supa {

SupaModel::SupaModel(const Dataset& data, SupaConfig config)
    : config_(config), rng_(config.seed) {
  graph_ = std::make_unique<DynamicGraph>(data.schema, data.node_types);
  store_ = std::make_unique<EmbeddingStore>(
      data.num_nodes(), data.schema.num_edge_types(),
      data.schema.num_node_types(), config_.dim, config_.init_scale, rng_);
  sampler_ = std::make_unique<InfluencedGraphSampler>(
      *graph_, data.metapaths, config_.num_walks, config_.walk_len);
  adam_ = std::make_unique<SparseAdam>(store_->size(), config_.lr,
                                       config_.weight_decay);
  degrees_.assign(data.num_nodes(), 0.0);
}

Status SupaModel::ObserveEdge(const TemporalEdge& e) {
  SUPA_RETURN_NOT_OK(graph_->AddEdge(e.src, e.dst, e.type, e.time));
  degrees_[e.src] += 1.0;
  degrees_[e.dst] += 1.0;
  if (++observed_since_rebuild_ >= config_.neg_table_refresh) {
    SUPA_RETURN_NOT_OK(RebuildNegativeTable());
  }
  return Status::OK();
}

Status SupaModel::RebuildNegativeTable() {
  observed_since_rebuild_ = 0;
  if (graph_->num_edges() == 0) {
    // Uniform before any structure exists.
    std::vector<double> w(degrees_.size(), 1.0);
    return neg_table_.Build(w);
  }
  std::vector<double> w(degrees_.size());
  for (size_t i = 0; i < degrees_.size(); ++i) {
    w[i] = std::pow(degrees_[i], 0.75);
  }
  return neg_table_.Build(w);
}

NodeId SupaModel::SampleNegative(NodeId u, NodeId v) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId cand = static_cast<NodeId>(neg_table_.Sample(rng_));
    if (cand != u && cand != v) return cand;
  }
  return kInvalidNode;
}

void SupaModel::RunUpdater(NodeId node, Timestamp t, UpdateContext* ctx) {
  const size_t d = static_cast<size_t>(config_.dim);
  ctx->node = node;
  ctx->grad_h_star.assign(d, 0.0f);
  ctx->h_star.assign(d, 0.0f);
  ctx->gamma = 1.0;
  ctx->delta = 0.0;
  ctx->decay_input = 0.0;

  const NodeTypeId otype =
      config_.shared_alpha ? static_cast<NodeTypeId>(0)
                           : graph_->NodeType(node);
  ctx->alpha_offset = store_->AlphaOffset(otype);

  const float* hl = store_->LongMem(node);
  float* hs = store_->ShortMem(node);

  if (config_.use_short_term) {
    const Timestamp last = graph_->LastActive(node);
    ctx->delta = (last == kNeverActive) ? 0.0 : std::max(0.0, t - last);
    if (config_.use_update_decay) {
      const double alpha = *store_->Alpha(otype);
      ctx->decay_input = Sigmoid(alpha) * ctx->delta;
      ctx->gamma = DecayG(ctx->decay_input);
      ctx->short_before.assign(hs, hs + d);
      // Persistent forgetting: the short-term memory itself decays, and the
      // new interaction's gradient signal is re-encoded into it.
      Scale(ctx->gamma, hs, d);
    } else {
      ctx->short_before.assign(hs, hs + d);
    }
    for (size_t i = 0; i < d; ++i) ctx->h_star[i] = hl[i] + hs[i];
  } else {
    ctx->short_before.clear();
    for (size_t i = 0; i < d; ++i) ctx->h_star[i] = hl[i];
  }
}

void SupaModel::BackpropUpdater(const UpdateContext& ctx) {
  const size_t d = static_cast<size_t>(config_.dim);
  const float* g = ctx.grad_h_star.data();
  grads_.Accumulate(store_->LongMemOffset(ctx.node), d, 1.0, g);
  if (!config_.use_short_term) return;
  grads_.Accumulate(store_->ShortMemOffset(ctx.node), d, 1.0, g);
  if (config_.use_update_decay && ctx.delta > 0.0) {
    // h* depends on α through the forgetting factor γ = g(σ(α)·Δ):
    // ∂h*/∂α = h^S_before · g'(x)·σ(α)(1-σ(α))·Δ with x = σ(α)·Δ.
    const double alpha =
        store_->data()[ctx.alpha_offset];
    const double sig = Sigmoid(alpha);
    const double dgamma_dalpha =
        DecayGPrime(ctx.decay_input) * sig * (1.0 - sig) * ctx.delta;
    const double inner =
        Dot(g, ctx.short_before.data(), d) * dgamma_dalpha;
    grads_.AccumulateScalar(ctx.alpha_offset, inner);
  }
}

Result<TrainStats> SupaModel::TrainEdge(const TemporalEdge& e) {
  if (e.src >= graph_->num_nodes() || e.dst >= graph_->num_nodes()) {
    return Status::OutOfRange("train edge endpoint out of range");
  }
  if (e.src == e.dst) {
    return Status::InvalidArgument("self loop in training stream");
  }
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId r_ctx = CtxRel(e.type);
  TrainStats stats;

  grads_.Clear();
  RunUpdater(e.src, e.time, &ctx_u_);
  RunUpdater(e.dst, e.time, &ctx_v_);

  // ---- interaction loss (Eq. 6–7) ----------------------------------------
  if (config_.use_inter_loss) {
    scratch_hr_u_.resize(d);
    scratch_hr_v_.resize(d);
    const float* cu = store_->Context(e.src, r_ctx);
    const float* cv = store_->Context(e.dst, r_ctx);
    for (size_t i = 0; i < d; ++i) {
      scratch_hr_u_[i] = 0.5f * (ctx_u_.h_star[i] + cu[i]);
      scratch_hr_v_[i] = 0.5f * (ctx_v_.h_star[i] + cv[i]);
    }
    const double s = Dot(scratch_hr_u_.data(), scratch_hr_v_.data(), d);
    stats.loss_inter = -LogSigmoid(s);
    const double a = 1.0 - Sigmoid(s);  // -dL/ds
    // dL/dh^r_u = -a·h^r_v; h^r = ½(h* + c) so both receive a ½ factor.
    Axpy(-0.5 * a, scratch_hr_v_.data(), ctx_u_.grad_h_star.data(), d);
    Axpy(-0.5 * a, scratch_hr_u_.data(), ctx_v_.grad_h_star.data(), d);
    grads_.Accumulate(store_->ContextOffset(e.src, r_ctx), d, -0.5 * a,
                      scratch_hr_v_.data());
    grads_.Accumulate(store_->ContextOffset(e.dst, r_ctx), d, -0.5 * a,
                      scratch_hr_u_.data());
  }

  // ---- time-aware propagation (Eq. 8–10) ----------------------------------
  if (config_.use_prop_loss) {
    InfluencedGraph influenced = sampler_->Sample(e.src, e.dst, rng_);
    auto propagate = [&](const std::vector<Walk>& walks,
                         UpdateContext& origin) {
      for (const Walk& walk : walks) {
        double f = 1.0;  // cumulative attenuation along the path
        for (const WalkStep& step : walk.steps) {
          if (config_.use_prop_decay) {
            const double delta_e = std::max(0.0, e.time - step.via_time);
            if (FilterD(delta_e, config_.tau) == 0.0) break;  // termination
            f *= DecayG(delta_e);                             // attenuation
          }
          const EdgeTypeId rr = CtxRel(step.via_type);
          const float* c = store_->Context(step.node, rr);
          // d_{p,z} = f · h*_origin, so s = c·d = f·(c·h*).
          const double s = f * Dot(c, origin.h_star.data(), d);
          stats.loss_prop += -LogSigmoid(s);
          ++stats.prop_steps;
          const double a = 1.0 - Sigmoid(s);
          grads_.Accumulate(store_->ContextOffset(step.node, rr), d, -a * f,
                            origin.h_star.data());
          Axpy(-a * f, c, origin.grad_h_star.data(), d);
        }
      }
    };
    propagate(influenced.from_u, ctx_u_);
    propagate(influenced.from_v, ctx_v_);
  }

  // ---- negative sampling loss (Eq. 12) -------------------------------------
  if (config_.use_neg_loss) {
    if (!neg_table_.built()) {
      SUPA_RETURN_NOT_OK(RebuildNegativeTable());
    }
    auto add_negatives = [&](UpdateContext& origin) {
      for (int j = 0; j < config_.num_neg; ++j) {
        const NodeId neg = SampleNegative(e.src, e.dst);
        if (neg == kInvalidNode) continue;
        const float* c = store_->Context(neg, r_ctx);
        const double s = Dot(c, origin.h_star.data(), d);
        stats.loss_neg += -LogSigmoid(-s);
        const double p = Sigmoid(s);  // dL/ds
        grads_.Accumulate(store_->ContextOffset(neg, r_ctx), d, p,
                          origin.h_star.data());
        Axpy(p, c, origin.grad_h_star.data(), d);
      }
    };
    add_negatives(ctx_u_);
    add_negatives(ctx_v_);
  }

  BackpropUpdater(ctx_u_);
  BackpropUpdater(ctx_v_);
  adam_->Step(grads_, store_->data());
  return stats;
}

Result<TrainStats> SupaModel::DeleteEdge(NodeId u, NodeId v, EdgeTypeId r,
                                         Timestamp t) {
  SUPA_RETURN_NOT_OK(graph_->RemoveEdge(u, v, r));
  degrees_[u] = std::max(0.0, degrees_[u] - 1.0);
  degrees_[v] = std::max(0.0, degrees_[v] - 1.0);
  // Process the deletion like an (inverted) interaction: the update step
  // refreshes both nodes' memories at time t, and the propagation spreads
  // the change through the remaining influenced graph. The interaction
  // loss is skipped — a deleted edge is no longer evidence that u and v
  // should embed closely.
  SupaConfig saved = config_;
  config_.use_inter_loss = false;
  auto stats = TrainEdge(TemporalEdge{u, v, r, t});
  config_ = saved;
  return stats;
}

double SupaModel::Score(NodeId u, NodeId v, EdgeTypeId r) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const float* ul = store_->LongMem(u);
  const float* us = store_->ShortMem(u);
  const float* uc = store_->Context(u, rr);
  const float* vl = store_->LongMem(v);
  const float* vs = store_->ShortMem(v);
  const float* vc = store_->Context(v, rr);
  double acc = 0.0;
  const double short_u = config_.use_short_term ? 1.0 : 0.0;
  for (size_t i = 0; i < d; ++i) {
    const double hu = 0.5 * (ul[i] + short_u * us[i] + uc[i]);
    const double hv = 0.5 * (vl[i] + short_u * vs[i] + vc[i]);
    acc += hu * hv;
  }
  return acc;
}

void SupaModel::FinalEmbedding(NodeId v, EdgeTypeId r, float* out) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const float* hl = store_->LongMem(v);
  const float* hs = store_->ShortMem(v);
  const float* c = store_->Context(v, rr);
  const double short_w = config_.use_short_term ? 1.0 : 0.0;
  for (size_t i = 0; i < d; ++i) {
    out[i] = static_cast<float>(0.5 * (hl[i] + short_w * hs[i] + c[i]));
  }
}

SupaModel::Snapshot SupaModel::TakeSnapshot() const {
  return Snapshot{store_->Snapshot(), adam_->Snapshot()};
}

void SupaModel::RestoreSnapshot(const Snapshot& snapshot) {
  store_->Restore(snapshot.params);
  adam_->Restore(snapshot.adam);
}

}  // namespace supa
