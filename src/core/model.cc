#include "core/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/math_utils.h"
#include "util/simd.h"

namespace supa {

namespace {

/// Re-base the delta-snapshot baseline once the dirty set covers this
/// fraction of the parameter buffer: beyond it a delta stops being
/// meaningfully cheaper than a full copy.
constexpr double kRebaseDirtyFraction = 0.25;

/// Snapshot-path counters, shared by every model in the process (the
/// registry is process-global). Looked up once; the handles are trivially
/// copyable and the registry is never destroyed.
struct SnapshotMetrics {
  obs::Counter delta_takes;
  obs::Counter rebases;
  obs::Counter delta_restores;
  obs::Counter fallback_restores;
  obs::Counter full_takes;
  obs::Counter full_restores;
  obs::Histogram dirty_rows;

  static SnapshotMetrics& Get() {
    static SnapshotMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return SnapshotMetrics{
          reg.GetCounter("snapshot.delta_takes"),
          reg.GetCounter("snapshot.rebases"),
          reg.GetCounter("snapshot.delta_restores"),
          reg.GetCounter("snapshot.fallback_restores"),
          reg.GetCounter("snapshot.full_takes"),
          reg.GetCounter("snapshot.full_restores"),
          reg.GetHistogram(
              "snapshot.dirty_rows",
              obs::MetricsRegistry::ExponentialBounds(1.0, 4.0, 12)),
      };
    }();
    return m;
  }
};

/// L2 norm over every accumulated gradient row — a monitoring read that
/// never mutates the buffer.
double GradBufferL2(const GradBuffer& grads) {
  double sum = 0.0;
  grads.ForEach([&](size_t /*offset*/, const float* g, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      sum += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  });
  return std::sqrt(sum);
}

}  // namespace

SupaModel::SupaModel(const Dataset& data, SupaConfig config)
    : config_(config), rng_(config.seed) {
  // The model owns one storage engine holding graph AND embeddings, so a
  // node's adjacency and its h^L/h^S/c^r rows colocate on the same shard.
  // This is the instrumented store: per-shard gauges and the /statusz
  // shard-balance table describe the trainer's state.
  store::StoreOptions store_options;
  store_options.num_shards = config_.shards;
  store_options.publish_metrics = true;
  graph_store_ = std::make_shared<store::GraphStore>(
      data.schema.num_edge_types(), data.node_types, store_options);
  graph_store_->AttachEmbeddings(data.schema.num_edge_types(),
                                 data.schema.num_node_types(), config_.dim,
                                 config_.init_scale, rng_);
  graph_ = std::make_unique<DynamicGraph>(graph_store_, data.schema);
  store_ =
      std::make_unique<EmbeddingStore>(graph_store_->shared_embeddings());
  sampler_ = std::make_unique<InfluencedGraphSampler>(
      *graph_store_, data.schema.num_node_types(), data.metapaths,
      config_.num_walks, config_.walk_len);
  adam_ = std::make_unique<SparseAdam>(store_->size(), config_.lr,
                                       config_.weight_decay);
  degrees_.assign(data.num_nodes(), 0.0);
}

Status SupaModel::ObserveEdge(const TemporalEdge& e) {
  SUPA_RETURN_NOT_OK(graph_->AddEdge(e.src, e.dst, e.type, e.time));
  if (edge_log_ != nullptr) edge_log_->LogAdd(e);
  // New-node checks read the pre-increment degrees; the recorded degrees
  // are post-insert, matching what the negative table will see.
  auto& monitor = obs::ModelMonitor::Global();
  const bool monitored = monitor.enabled();
  const bool src_new = monitored && degrees_[e.src] == 0.0;
  const bool dst_new = monitored && degrees_[e.dst] == 0.0;
  degrees_[e.src] += 1.0;
  degrees_[e.dst] += 1.0;
  if (monitored) {
    monitor.RecordObservedEdge(e.src, e.dst, degrees_[e.src],
                               degrees_[e.dst], src_new, dst_new);
  }
  if (++observed_since_rebuild_ >= config_.neg_table_refresh) {
    SUPA_RETURN_NOT_OK(RebuildNegativeTable());
  }
  return Status::OK();
}

Status SupaModel::RebuildNegativeTable() {
  observed_since_rebuild_ = 0;
  // The weight vector is scratch reused across rebuilds — the table is
  // refreshed every neg_table_refresh observed edges, so reallocating
  // O(|V|) doubles each time adds up on long streams.
  if (graph_->num_edges() == 0) {
    // Uniform before any structure exists.
    neg_weight_scratch_.assign(degrees_.size(), 1.0);
    return neg_table_.Build(neg_weight_scratch_);
  }
  neg_weight_scratch_.resize(degrees_.size());
  for (size_t i = 0; i < degrees_.size(); ++i) {
    neg_weight_scratch_[i] = std::pow(degrees_[i], 0.75);
  }
  return neg_table_.Build(neg_weight_scratch_);
}

NodeId SupaModel::SampleNegative(NodeId u, NodeId v) {
  return SampleNegative(u, v, rng_);
}

NodeId SupaModel::SampleNegative(NodeId u, NodeId v, Rng& rng) const {
  for (int attempt = 0; attempt < 8; ++attempt) {
    NodeId cand = static_cast<NodeId>(neg_table_.Sample(rng));
    if (cand != u && cand != v) return cand;
  }
  return kInvalidNode;
}

void SupaModel::RunUpdater(NodeId node, Timestamp t, Timestamp last_active,
                           UpdateContext* ctx, const MathSink& sink,
                           double* deferred_gamma) {
  const size_t d = static_cast<size_t>(config_.dim);
  ctx->node = node;
  ctx->grad_h_star.assign(d, 0.0f);
  ctx->h_star.resize(d);
  ctx->gamma = 1.0;
  ctx->delta = 0.0;
  ctx->decay_input = 0.0;

  const NodeTypeId otype =
      config_.shared_alpha ? static_cast<NodeTypeId>(0)
                           : graph_->NodeType(node);
  ctx->alpha_offset = store_->AlphaOffset(otype);

  const float* hl = store_->LongMem(node);
  float* hs = store_->ShortMem(node);

  if (config_.use_short_term) {
    ctx->delta =
        (last_active == kNeverActive) ? 0.0 : std::max(0.0, t - last_active);
    if (config_.use_update_decay) {
      const double alpha = *store_->Alpha(otype);
      ctx->decay_input = Sigmoid(alpha) * ctx->delta;
      ctx->gamma = DecayG(ctx->decay_input);
      ctx->short_before.assign(hs, hs + d);
      // Persistent forgetting: the short-term memory itself decays, and the
      // new interaction's gradient signal is re-encoded into it. This
      // mutates parameters outside the optimizer, so the row is marked
      // dirty here rather than relying on the optimizer step that
      // normally follows (TrainEdge can error out in between). Pipeline
      // executors bank the mark instead — the shared dirty set is not
      // thread-safe.
      if (sink.dirty != nullptr) {
        sink.dirty->emplace_back(store_->ShortMemOffset(node),
                                 static_cast<uint32_t>(d));
      } else {
        adam_->MarkDirty(store_->ShortMemOffset(node),
                         static_cast<uint32_t>(d));
      }
      if (deferred_gamma != nullptr) {
        // Deferred decay: bank γ and work on a scratch copy. The live row
        // is scaled at commit, in arrival order, so a shared endpoint
        // keeps earlier in-group commits instead of being overwritten
        // with a group-start value. The scale-then-read sequence matches
        // the in-place path bit-for-bit when rows don't overlap.
        *deferred_gamma = ctx->gamma;
        ctx->short_scaled.assign(hs, hs + d);
        Scale(ctx->gamma, ctx->short_scaled.data(), d);
        hs = ctx->short_scaled.data();
      } else {
        Scale(ctx->gamma, hs, d);
      }
    } else {
      ctx->short_before.assign(hs, hs + d);
    }
    simd::Add(hl, hs, ctx->h_star.data(), d);
  } else {
    ctx->short_before.clear();
    std::memcpy(ctx->h_star.data(), hl, d * sizeof(float));
  }
}

void SupaModel::BackpropUpdater(const UpdateContext& ctx, GradBuffer& grads,
                                const MathSink& sink) {
  const size_t d = static_cast<size_t>(config_.dim);
  const float* g = ctx.grad_h_star.data();
  grads.Accumulate(store_->LongMemOffset(ctx.node), d, 1.0, g);
  if (!config_.use_short_term) return;
  grads.Accumulate(store_->ShortMemOffset(ctx.node), d, 1.0, g);
  if (config_.use_update_decay && ctx.delta > 0.0) {
    // h* depends on α through the forgetting factor γ = g(σ(α)·Δ):
    // ∂h*/∂α = h^S_before · g'(x)·σ(α)(1-σ(α))·Δ with x = σ(α)·Δ.
    const double alpha =
        store_->data()[ctx.alpha_offset];
    const double sig = Sigmoid(alpha);
    const double dgamma_dalpha =
        DecayGPrime(ctx.decay_input) * sig * (1.0 - sig) * ctx.delta;
    const double inner =
        Dot(g, ctx.short_before.data(), d) * dgamma_dalpha;
    if (sink.alpha != nullptr) {
      // Deferred α: accumulate in float exactly like the GradBuffer row
      // the serial path uses (u's and v's contributions may share one α).
      float* cell = nullptr;
      for (auto& entry : *sink.alpha) {
        if (entry.first == ctx.alpha_offset) {
          cell = &entry.second;
          break;
        }
      }
      if (cell == nullptr) {
        sink.alpha->emplace_back(ctx.alpha_offset, 0.0f);
        cell = &sink.alpha->back().second;
      }
      *cell += static_cast<float>(inner);
    } else {
      grads.AccumulateScalar(ctx.alpha_offset, inner);
    }
  }
}

Status SupaModel::PlanEdge(const TemporalEdge& e, const TrainOptions& options,
                           bool want_footprint, EdgePlan* plan) {
  if (e.src >= graph_->num_nodes() || e.dst >= graph_->num_nodes()) {
    return Status::OutOfRange("train edge endpoint out of range");
  }
  if (e.src == e.dst) {
    return Status::InvalidArgument("self loop in training stream");
  }
  plan->edge = e;
  plan->options = options;
  // The last-active timestamps feed Δ_V; the serial trainer reads them at
  // step start, before the edge is observed, so they are banked here.
  plan->last_active_u = graph_->LastActive(e.src);
  plan->last_active_v = graph_->LastActive(e.dst);
  plan->u_walk_count = 0;
  plan->negatives.clear();
  plan->rows.clear();
  plan->shard_mask = 0;

  // RNG draw order matches the serial trainer exactly: walks first, then
  // the (possibly rebuilt) negative table's draws.
  if (config_.use_prop_loss) {
    SUPA_TRACE_SPAN_CAT("sample", "model");
    SUPA_PERF_SCOPE(kSample);
    sampler_->SampleInto(e.src, e.dst, rng_, &plan->walks,
                         &plan->u_walk_count);
  }
  if (config_.use_neg_loss) {
    if (!neg_table_.built()) {
      SUPA_RETURN_NOT_OK(RebuildNegativeTable());
    }
    const size_t total = 2 * static_cast<size_t>(config_.num_neg);
    plan->negatives.reserve(total);
    for (size_t j = 0; j < total; ++j) {
      plan->negatives.push_back(SampleNegative(e.src, e.dst));
    }
  }

  if (want_footprint) {
    const EdgeTypeId r_ctx = CtxRel(e.type);
    auto touch = [&](NodeId node, size_t offset) {
      plan->rows.push_back(offset);
      plan->shard_mask |= graph_store_->ShardMaskOf(node);
    };
    touch(e.src, store_->LongMemOffset(e.src));
    touch(e.dst, store_->LongMemOffset(e.dst));
    if (config_.use_short_term) {
      touch(e.src, store_->ShortMemOffset(e.src));
      touch(e.dst, store_->ShortMemOffset(e.dst));
    }
    if (config_.use_inter_loss && options.use_inter_loss) {
      touch(e.src, store_->ContextOffset(e.src, r_ctx));
      touch(e.dst, store_->ContextOffset(e.dst, r_ctx));
    }
    if (config_.use_prop_loss) {
      // Every walk row, including those the filter D(.) would terminate
      // before — the footprint must be a superset of the writes, and
      // termination depends on edge time, cheap to over-approximate.
      for (size_t w = 0; w < plan->walks.num_walks(); ++w) {
        const WalkBuffer::Span& span = plan->walks.walk(w);
        const WalkStep* steps = plan->walks.steps_of(span);
        for (size_t si = 0; si < span.size(); ++si) {
          touch(steps[si].node,
                store_->ContextOffset(steps[si].node,
                                      CtxRel(steps[si].via_type)));
        }
      }
    }
    if (config_.use_neg_loss) {
      for (NodeId neg : plan->negatives) {
        if (neg == kInvalidNode) continue;
        touch(neg, store_->ContextOffset(neg, r_ctx));
      }
    }
    if (config_.use_short_term && config_.use_update_decay) {
      // The α tail rides with shard 0's write ordering; the α row itself
      // is excluded from `rows` (dispatcher-committed, never raced).
      plan->shard_mask |= uint64_t{1};
    }
  }
  return Status::OK();
}

TrainStats SupaModel::RunEdgeMath(const EdgePlan& plan, ExecScratch* scratch,
                                  const MathSink& sink) {
  const TemporalEdge& e = plan.edge;
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId r_ctx = CtxRel(e.type);
  TrainStats stats;
  GradBuffer& grads = sink.grads != nullptr ? *sink.grads : scratch->grads;
  UpdateContext& ctx_u = scratch->ctx_u;
  UpdateContext& ctx_v = scratch->ctx_v;

  grads.Clear();
  {
    SUPA_TRACE_SPAN_CAT("update", "model");
    SUPA_PERF_SCOPE(kUpdate);
    RunUpdater(e.src, e.time, plan.last_active_u, &ctx_u, sink, sink.gamma_u);
    RunUpdater(e.dst, e.time, plan.last_active_v, &ctx_v, sink, sink.gamma_v);
  }

  // ---- interaction loss (Eq. 6–7) ----------------------------------------
  if (config_.use_inter_loss && plan.options.use_inter_loss) {
    scratch->hr_u.resize(d);
    scratch->hr_v.resize(d);
    const float* cu = store_->Context(e.src, r_ctx);
    const float* cv = store_->Context(e.dst, r_ctx);
    simd::HalfSum(ctx_u.h_star.data(), cu, scratch->hr_u.data(), d);
    simd::HalfSum(ctx_v.h_star.data(), cv, scratch->hr_v.data(), d);
    const double s = Dot(scratch->hr_u.data(), scratch->hr_v.data(), d);
    stats.loss_inter = -LogSigmoid(s);
    const double a = 1.0 - Sigmoid(s);  // -dL/ds
    // dL/dh^r_u = -a·h^r_v; h^r = ½(h* + c) so both receive a ½ factor.
    Axpy(-0.5 * a, scratch->hr_v.data(), ctx_u.grad_h_star.data(), d);
    Axpy(-0.5 * a, scratch->hr_u.data(), ctx_v.grad_h_star.data(), d);
    grads.Accumulate(store_->ContextOffset(e.src, r_ctx), d, -0.5 * a,
                     scratch->hr_v.data());
    grads.Accumulate(store_->ContextOffset(e.dst, r_ctx), d, -0.5 * a,
                     scratch->hr_u.data());
  }

  // ---- time-aware propagation (Eq. 8–10) ----------------------------------
  if (config_.use_prop_loss) {
    SUPA_TRACE_SPAN_CAT("propagate", "model");
    SUPA_PERF_SCOPE(kPropagate);
    auto propagate = [&](size_t walk_begin, size_t walk_end,
                         UpdateContext& origin) {
      for (size_t w = walk_begin; w < walk_end; ++w) {
        const WalkBuffer::Span& span = plan.walks.walk(w);
        const WalkStep* steps = plan.walks.steps_of(span);
        double f = 1.0;  // cumulative attenuation along the path
        for (size_t si = 0; si < span.size(); ++si) {
          const WalkStep& step = steps[si];
          if (config_.use_prop_decay) {
            const double delta_e = std::max(0.0, e.time - step.via_time);
            if (FilterD(delta_e, config_.tau) == 0.0) break;  // termination
            f *= DecayG(delta_e);                             // attenuation
          }
          const EdgeTypeId rr = CtxRel(step.via_type);
          const float* c = store_->Context(step.node, rr);
          // d_{p,z} = f · h*_origin, so s = c·d = f·(c·h*).
          const double s = f * Dot(c, origin.h_star.data(), d);
          stats.loss_prop += -LogSigmoid(s);
          ++stats.prop_steps;
          const double a = 1.0 - Sigmoid(s);
          grads.Accumulate(store_->ContextOffset(step.node, rr), d, -a * f,
                           origin.h_star.data());
          Axpy(-a * f, c, origin.grad_h_star.data(), d);
        }
      }
    };
    propagate(0, plan.u_walk_count, ctx_u);
    propagate(plan.u_walk_count, plan.walks.num_walks(), ctx_v);
  }

  // ---- negative sampling loss (Eq. 12) -------------------------------------
  if (config_.use_neg_loss) {
    SUPA_TRACE_SPAN_CAT("negative", "model");
    SUPA_PERF_SCOPE(kNegative);
    const size_t n = static_cast<size_t>(config_.num_neg);
    auto add_negatives = [&](size_t base, UpdateContext& origin) {
      for (size_t j = 0; j < n; ++j) {
        const NodeId neg = plan.negatives[base + j];
        if (neg == kInvalidNode) continue;
        const float* c = store_->Context(neg, r_ctx);
        const double s = Dot(c, origin.h_star.data(), d);
        stats.loss_neg += -LogSigmoid(-s);
        const double p = Sigmoid(s);  // dL/ds
        grads.Accumulate(store_->ContextOffset(neg, r_ctx), d, p,
                         origin.h_star.data());
        Axpy(p, c, origin.grad_h_star.data(), d);
      }
    };
    add_negatives(0, ctx_u);
    add_negatives(n, ctx_v);
  }

  {
    SUPA_TRACE_SPAN_CAT("optimize", "model");
    SUPA_PERF_SCOPE(kOptimize);
    BackpropUpdater(ctx_u, grads, sink);
    BackpropUpdater(ctx_v, grads, sink);
  }
  return stats;
}

Result<TrainStats> SupaModel::TrainEdge(const TemporalEdge& e,
                                        const TrainOptions& options) {
  SUPA_TRACE_SPAN_CAT("train_edge", "model");
  SUPA_PERF_SCOPE(kTrainEdge);
  SUPA_RETURN_NOT_OK(
      PlanEdge(e, options, /*want_footprint=*/false, &serial_plan_));

  // A full training step scatters embedding writes across arbitrary rows
  // (walk and negative contexts land anywhere), so it holds the
  // whole-store write lease; concurrent snapshot publishes wait for the
  // step boundary. With propagation AND negative sampling both disabled
  // the writes provably stay on the endpoints' rows, so those
  // configurations — ablations and DeleteEdge-heavy maintenance flows on
  // such models — lease just the endpoint shards (+ shard 0 for the α
  // tail) instead of serializing against the whole store.
  store::ShardWriteLease lease =
      (!config_.use_prop_loss && !config_.use_neg_loss)
          ? graph_store_->LeaseMask(
                graph_store_->ShardMaskOf(e.src) |
                graph_store_->ShardMaskOf(e.dst) |
                ((config_.use_short_term && config_.use_update_decay)
                     ? uint64_t{1}
                     : uint64_t{0}))
          : graph_store_->LeaseAll();

  // Serial sink: dirty rows and α gradients flow straight into the
  // optimizer, exactly as before the plan/execute split.
  const MathSink sink;
  const TrainStats stats = RunEdgeMath(serial_plan_, &serial_scratch_, sink);
  auto& monitor = obs::ModelMonitor::Global();
  const bool monitored = monitor.enabled();
  SparseAdam::StepStats step_stats;
  {
    SUPA_TRACE_SPAN_CAT("optimize", "model");
    SUPA_PERF_SCOPE(kOptimize);
    adam_->Step(serial_scratch_.grads, store_->data(),
                monitored ? &step_stats : nullptr);
  }
  if (monitored) {
    monitor.RecordTrainStep(stats.loss_inter, stats.loss_prop,
                            stats.loss_neg,
                            GradBufferL2(serial_scratch_.grads),
                            std::sqrt(step_stats.sum_update_sq),
                            std::sqrt(step_stats.sum_param_sq_before),
                            std::sqrt(step_stats.sum_param_sq_after));
  }
  return stats;
}

void SupaModel::ExecutePlan(EdgePlan* plan, ExecScratch* scratch) {
  plan->dirty.clear();
  plan->alpha_grads.clear();
  MathSink sink;
  sink.dirty = &plan->dirty;
  sink.alpha = &plan->alpha_grads;
  plan->stats = RunEdgeMath(*plan, scratch, sink);
  // Row updates land now, at the plan's pinned step; α and the dirty merge
  // wait for CommitPlan. Per-row Adam math depends only on the step number
  // and the row's own state, so disjoint-row plans commute bit-exactly.
  plan->mon_sampled = obs::ModelMonitor::Global().enabled();
  SparseAdam::StepStats step_stats;
  adam_->StepAt(plan->step, scratch->grads, store_->data(), &plan->dirty,
                plan->mon_sampled ? &step_stats : nullptr);
  if (plan->mon_sampled) {
    // Banked for CommitPlan: the monitor's mutex stays off the worker.
    plan->mon_grad_norm = GradBufferL2(scratch->grads);
    plan->mon_step_norm = std::sqrt(step_stats.sum_update_sq);
    plan->mon_row_norm_before = std::sqrt(step_stats.sum_param_sq_before);
    plan->mon_row_norm_after = std::sqrt(step_stats.sum_param_sq_after);
  }
}

void SupaModel::CommitPlan(const EdgePlan& plan) {
  for (const auto& [offset, len] : plan.dirty) {
    adam_->MarkDirty(offset, len);
  }
  for (const auto& [offset, grad] : plan.alpha_grads) {
    adam_->StepScalarAt(plan.step, offset, grad, store_->data());
  }
  adam_->set_step_count(plan.step);
  auto& monitor = obs::ModelMonitor::Global();
  if (plan.mon_sampled && monitor.enabled()) {
    monitor.RecordTrainStep(plan.stats.loss_inter, plan.stats.loss_prop,
                            plan.stats.loss_neg, plan.mon_grad_norm,
                            plan.mon_step_norm, plan.mon_row_norm_before,
                            plan.mon_row_norm_after);
  }
}

Status SupaModel::PlanEdgeDeferred(const TemporalEdge& e,
                                   const TrainOptions& options,
                                   EdgePlan* plan) {
  if (e.src >= graph_->num_nodes() || e.dst >= graph_->num_nodes()) {
    return Status::OutOfRange("train edge endpoint out of range");
  }
  if (e.src == e.dst) {
    return Status::InvalidArgument("self loop in training stream");
  }
  plan->edge = e;
  plan->options = options;
  plan->last_active_u = graph_->LastActive(e.src);
  plan->last_active_v = graph_->LastActive(e.dst);
  plan->u_walk_count = 0;
  plan->negatives.clear();
  plan->rows.clear();
  plan->shard_mask = 0;
  // Executors sample the table concurrently and must never mutate it, so
  // a pending rebuild happens here, on the dispatcher, before launch.
  if (config_.use_neg_loss && !neg_table_.built()) {
    SUPA_RETURN_NOT_OK(RebuildNegativeTable());
  }
  return Status::OK();
}

void SupaModel::ExecutePlanDeferred(EdgePlan* plan, ExecScratch* scratch) {
  plan->dirty.clear();
  plan->alpha_grads.clear();
  plan->grads.Clear();
  plan->gamma_u = 1.0;
  plan->gamma_v = 1.0;
  const TemporalEdge& e = plan->edge;
  // Counter-based stream: one private RNG keyed by (seed, step), so the
  // draws depend only on the edge's arrival index — never on the writer
  // count or the execution interleaving.
  Rng rng(0x9E3779B97F4A7C15ULL * (plan->step + 1) ^
          (static_cast<uint64_t>(config_.seed) + 0x632BE59BD9B4E019ULL));
  if (config_.use_prop_loss) {
    SUPA_TRACE_SPAN_CAT("sample", "model");
    SUPA_PERF_SCOPE(kSample);
    sampler_->SampleInto(e.src, e.dst, rng, &plan->walks,
                         &plan->u_walk_count);
  }
  if (config_.use_neg_loss) {
    const size_t total = 2 * static_cast<size_t>(config_.num_neg);
    plan->negatives.reserve(total);
    for (size_t j = 0; j < total; ++j) {
      plan->negatives.push_back(SampleNegative(e.src, e.dst, rng));
    }
  }
  MathSink sink;
  sink.dirty = &plan->dirty;
  sink.grads = &plan->grads;
  sink.gamma_u = &plan->gamma_u;
  sink.gamma_v = &plan->gamma_v;
  // α rides in `grads` as a scalar row (sink.alpha stays null) — the
  // commit-time Step applies it exactly like the serial trainer.
  plan->stats = RunEdgeMath(*plan, scratch, sink);
}

void SupaModel::CommitPlanDeferred(const EdgePlan& plan) {
  SUPA_TRACE_SPAN_CAT("optimize", "model");
  SUPA_PERF_SCOPE(kOptimize);
  const size_t d = static_cast<size_t>(config_.dim);
  if (config_.use_short_term && config_.use_update_decay) {
    // The banked forgetting scales the *live* rows — layered on top of
    // any earlier in-group commits to the same endpoints.
    Scale(plan.gamma_u, store_->ShortMem(plan.edge.src), d);
    Scale(plan.gamma_v, store_->ShortMem(plan.edge.dst), d);
  }
  for (const auto& [offset, len] : plan.dirty) {
    adam_->MarkDirty(offset, len);
  }
  auto& monitor = obs::ModelMonitor::Global();
  const bool monitored = monitor.enabled();
  SparseAdam::StepStats step_stats;
  adam_->Step(plan.grads, store_->data(), monitored ? &step_stats : nullptr);
  if (monitored) {
    monitor.RecordTrainStep(plan.stats.loss_inter, plan.stats.loss_prop,
                            plan.stats.loss_neg, GradBufferL2(plan.grads),
                            std::sqrt(step_stats.sum_update_sq),
                            std::sqrt(step_stats.sum_param_sq_before),
                            std::sqrt(step_stats.sum_param_sq_after));
  }
}

Result<TrainStats> SupaModel::DeleteEdge(NodeId u, NodeId v, EdgeTypeId r,
                                         Timestamp t) {
  SUPA_RETURN_NOT_OK(graph_->RemoveEdge(u, v, r));
  if (edge_log_ != nullptr) edge_log_->LogRemove(u, v, r, t);
  degrees_[u] = std::max(0.0, degrees_[u] - 1.0);
  degrees_[v] = std::max(0.0, degrees_[v] - 1.0);
  // Process the deletion like an (inverted) interaction: the update step
  // refreshes both nodes' memories at time t, and the propagation spreads
  // the change through the remaining influenced graph. The interaction
  // loss is skipped — a deleted edge is no longer evidence that u and v
  // should embed closely.
  TrainOptions options;
  options.use_inter_loss = false;
  return TrainEdge(TemporalEdge{u, v, r, t}, options);
}

Status SupaModel::ReplayRemoveEdge(NodeId u, NodeId v, EdgeTypeId r) {
  // Durability replay: reproduce exactly the graph-side effects of
  // DeleteEdge and nothing else. The original deletion's TrainEdge already
  // shaped the parameters captured in the checkpoint, and last-active
  // timestamps are only ever written by graph insertion, so removal +
  // degree decrement is the complete state delta. No edge-log callback —
  // the record being replayed *is* the log entry.
  SUPA_RETURN_NOT_OK(graph_->RemoveEdge(u, v, r));
  degrees_[u] = std::max(0.0, degrees_[u] - 1.0);
  degrees_[v] = std::max(0.0, degrees_[v] - 1.0);
  return Status::OK();
}

double SupaModel::Score(NodeId u, NodeId v, EdgeTypeId r) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const double short_w = config_.use_short_term ? 1.0 : 0.0;
  return simd::ScoreDot(store_->LongMem(u), store_->ShortMem(u),
                        store_->Context(u, rr), store_->LongMem(v),
                        store_->ShortMem(v), store_->Context(v, rr), short_w,
                        d);
}

void SupaModel::FinalEmbedding(NodeId v, EdgeTypeId r, float* out) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const double short_w = config_.use_short_term ? 1.0 : 0.0;
  simd::CombineHalf(store_->LongMem(v), store_->ShortMem(v),
                    store_->Context(v, rr), short_w, out, d);
}

std::shared_ptr<const store::StoreSnapshot> SupaModel::AcquireSnapshot()
    const {
  return graph_store_->AcquireSnapshot();
}

double SupaModel::ScoreOn(const store::StoreSnapshot& snapshot, NodeId u,
                          NodeId v, EdgeTypeId r) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const double short_w = config_.use_short_term ? 1.0 : 0.0;
  return simd::ScoreDot(snapshot.LongMem(u), snapshot.ShortMem(u),
                        snapshot.Context(u, rr), snapshot.LongMem(v),
                        snapshot.ShortMem(v), snapshot.Context(v, rr),
                        short_w, d);
}

void SupaModel::FinalEmbeddingOn(const store::StoreSnapshot& snapshot,
                                 NodeId v, EdgeTypeId r, float* out) const {
  const size_t d = static_cast<size_t>(config_.dim);
  const EdgeTypeId rr = CtxRel(r);
  const double short_w = config_.use_short_term ? 1.0 : 0.0;
  simd::CombineHalf(snapshot.LongMem(v), snapshot.ShortMem(v),
                    snapshot.Context(v, rr), short_w, out, d);
}

SupaModel::Snapshot SupaModel::TakeSnapshot() const {
  SUPA_TRACE_SPAN_CAT("snapshot/full_take", "snapshot");
  SUPA_PERF_SCOPE(kSnapshotTake);
  SnapshotMetrics::Get().full_takes.Increment();
  return Snapshot{store_->Snapshot(), adam_->Snapshot()};
}

void SupaModel::RestoreSnapshot(const Snapshot& snapshot) {
  SUPA_TRACE_SPAN_CAT("snapshot/full_restore", "snapshot");
  SUPA_PERF_SCOPE(kSnapshotRestore);
  SnapshotMetrics::Get().full_restores.Increment();
  store::ShardWriteLease lease = graph_store_->LeaseAll();
  store_->Restore(snapshot.params);
  adam_->Restore(snapshot.adam);
  // The whole buffer changed; dirty tracking no longer describes the
  // distance to the old baseline.
  InvalidateDeltaBaseline();
}

void SupaModel::InvalidateDeltaBaseline() {
  delta_baseline_.reset();
  adam_->ClearDirty();
}

SupaModel::DeltaSnapshot SupaModel::TakeDeltaSnapshot() {
  SUPA_TRACE_SPAN_CAT("snapshot/delta_take", "snapshot");
  SUPA_PERF_SCOPE(kSnapshotTake);
  SnapshotMetrics& metrics = SnapshotMetrics::Get();
  metrics.delta_takes.Increment();
  if (delta_baseline_ == nullptr ||
      static_cast<double>(adam_->dirty_rows().num_floats()) >
          kRebaseDirtyFraction * static_cast<double>(store_->size())) {
    // (Re-)establish the baseline: one full copy, after which snapshots
    // and restores are O(dirty) until the dirty set grows too large again.
    metrics.rebases.Increment();
    delta_baseline_ = std::make_shared<const Snapshot>(TakeSnapshot());
    adam_->ClearDirty();
  }

  const DirtyRowSet& dirty = adam_->dirty_rows();
  metrics.dirty_rows.Observe(static_cast<double>(dirty.num_rows()));
  DeltaSnapshot snap;
  snap.baseline = delta_baseline_;
  snap.adam_step = adam_->step_count();
  snap.offsets.reserve(dirty.num_rows());
  snap.lens.reserve(dirty.num_rows());
  snap.params.reserve(dirty.num_floats());
  snap.m.reserve(dirty.num_floats());
  snap.v.reserve(dirty.num_floats());
  const float* params = store_->data();
  const float* m = adam_->m_data();
  const float* v = adam_->v_data();
  dirty.ForEach([&](size_t offset, uint32_t len) {
    snap.offsets.push_back(offset);
    snap.lens.push_back(len);
    snap.params.insert(snap.params.end(), params + offset,
                       params + offset + len);
    snap.m.insert(snap.m.end(), m + offset, m + offset + len);
    snap.v.insert(snap.v.end(), v + offset, v + offset + len);
  });
#ifndef NDEBUG
  snap.debug_full = TakeSnapshot();
#endif
  return snap;
}

void SupaModel::RestoreDeltaSnapshot(const DeltaSnapshot& snapshot) {
  assert(snapshot.baseline != nullptr &&
         "RestoreDeltaSnapshot needs a snapshot from TakeDeltaSnapshot");
  SUPA_TRACE_SPAN_CAT("snapshot/delta_restore", "snapshot");
  SUPA_PERF_SCOPE(kSnapshotRestore);
  SnapshotMetrics& metrics = SnapshotMetrics::Get();
  store::ShardWriteLease lease = graph_store_->LeaseAll();
  float* params = store_->data();
  float* m = adam_->m_data();
  float* v = adam_->v_data();
  // Baseline identity (not an id/epoch counter) gates the fast path: both
  // shared_ptrs pin their object, so pointer equality here can never alias
  // a freed-and-recycled baseline.
  if (delta_baseline_ != nullptr && snapshot.baseline == delta_baseline_) {
    // Fast path: revert every row dirty since the shared baseline, then
    // re-apply the snapshot's rows below — O(dirty) total.
    metrics.delta_restores.Increment();
    const Snapshot& base = *delta_baseline_;
    adam_->dirty_rows().ForEach([&](size_t offset, uint32_t len) {
      std::memcpy(params + offset, base.params.data() + offset,
                  len * sizeof(float));
      std::memcpy(m + offset, base.adam.m.data() + offset,
                  len * sizeof(float));
      std::memcpy(v + offset, base.adam.v.data() + offset,
                  len * sizeof(float));
    });
  } else {
    // Full-copy fallback: the model was re-based or fully restored since
    // this snapshot was taken, so its baseline (kept alive by the shared
    // handle) is copied wholesale and adopted as the live baseline.
    metrics.fallback_restores.Increment();
    const Snapshot& base = *snapshot.baseline;
    std::memcpy(params, base.params.data(),
                base.params.size() * sizeof(float));
    std::memcpy(m, base.adam.m.data(), base.adam.m.size() * sizeof(float));
    std::memcpy(v, base.adam.v.data(), base.adam.v.size() * sizeof(float));
    delta_baseline_ = snapshot.baseline;
    // Whole-buffer rewrite outside SparseAdam::Restore: checkpoint dirty
    // tracking cannot bound the change, so the next durable link must be
    // a full base.
    adam_->MarkAllCheckpointDirty();
  }

  size_t pos = 0;
  for (size_t i = 0; i < snapshot.offsets.size(); ++i) {
    const size_t offset = snapshot.offsets[i];
    const size_t len = snapshot.lens[i];
    std::memcpy(params + offset, snapshot.params.data() + pos,
                len * sizeof(float));
    std::memcpy(m + offset, snapshot.m.data() + pos, len * sizeof(float));
    std::memcpy(v + offset, snapshot.v.data() + pos, len * sizeof(float));
    pos += len;
  }
  adam_->set_step_count(snapshot.adam_step);

  // The live state now differs from the baseline exactly on the
  // snapshot's rows.
  adam_->ClearDirty();
  for (size_t i = 0; i < snapshot.offsets.size(); ++i) {
    adam_->MarkDirty(snapshot.offsets[i], snapshot.lens[i]);
  }

#ifndef NDEBUG
  // Determinism contract: the delta path must reproduce a full restore
  // bit-for-bit.
  if (!snapshot.debug_full.params.empty()) {
    assert(store_->Snapshot() == snapshot.debug_full.params);
    const SparseAdam::State state = adam_->Snapshot();
    assert(state.m == snapshot.debug_full.adam.m);
    assert(state.v == snapshot.debug_full.adam.v);
    assert(state.step == snapshot.debug_full.adam.step);
  }
#endif
}

}  // namespace supa
