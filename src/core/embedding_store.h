// Parameter storage for SUPA: per-node long-term memory h^L, short-term
// memory h^S, per-(node, relation) context embeddings c^r, and per-node-type
// drift scalars α_o — all in one contiguous float buffer so the optimizer
// state and model snapshots are trivially aligned.
//
// Since the storage-engine refactor this class is a facade over a sharded
// store::EmbeddingBank (DESIGN.md §11). The buffer stays contiguous but is
// laid out shard-major; offsets remain opaque handles (the optimizer,
// gradient buffer, and delta snapshots never interpret them), and with one
// shard the physical layout is byte-identical to the historical monolith:
//
///   [0, N*d)            long-term memories
///   [N*d, 2N*d)         short-term memories
///   [2N*d, 2N*d + N*R*d) context embeddings (node-major, relation-minor)
///   [.., +T)            α scalars, one per node type
//
// Layout-*invariant* serialization (checkpoints) goes through
// GatherLogical / ScatterLogical, which permute to exactly that canonical
// order at any shard count.

#ifndef SUPA_CORE_EMBEDDING_STORE_H_
#define SUPA_CORE_EMBEDDING_STORE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "store/embedding_bank.h"
#include "util/rng.h"

namespace supa {

class EmbeddingStore {
 public:
  /// Allocates and randomly initializes all parameters with
  /// N(0, init_scale²); α starts at 0 (σ(0) = ½ drift coefficient). The
  /// shard count comes from SUPA_SHARDS (default 1); the RNG stream is
  /// consumed in logical row order, so the initial model is bit-identical
  /// at every shard count.
  EmbeddingStore(size_t num_nodes, size_t num_relations,
                 size_t num_node_types, int dim, double init_scale, Rng& rng);

  /// Wraps an existing bank (shared with the owner, e.g. the model's
  /// GraphStore, so graph and embeddings colocate on the same shards).
  explicit EmbeddingStore(std::shared_ptr<store::EmbeddingBank> bank);

  // Deep-copy value semantics (the bank is copied, the immutable layout
  // shared).
  EmbeddingStore(const EmbeddingStore& other);
  EmbeddingStore& operator=(const EmbeddingStore& other);
  EmbeddingStore(EmbeddingStore&&) noexcept = default;
  EmbeddingStore& operator=(EmbeddingStore&&) noexcept = default;

  /// h^L_v — mutable row of `dim` floats.
  float* LongMem(NodeId v) { return bank_->LongMem(v); }
  const float* LongMem(NodeId v) const { return bank_->LongMem(v); }

  /// h^S_v.
  float* ShortMem(NodeId v) { return bank_->ShortMem(v); }
  const float* ShortMem(NodeId v) const { return bank_->ShortMem(v); }

  /// c^r_v.
  float* Context(NodeId v, EdgeTypeId r) { return bank_->Context(v, r); }
  const float* Context(NodeId v, EdgeTypeId r) const {
    return bank_->Context(v, r);
  }

  /// α_o (stored as a float parameter).
  float* Alpha(NodeTypeId o) { return bank_->Alpha(o); }
  const float* Alpha(NodeTypeId o) const { return bank_->Alpha(o); }

  /// Parameter offsets (for the sparse optimizer). Opaque: stable for the
  /// store's lifetime, unique per row, but layout-dependent — never
  /// persist them raw (checkpoints use the logical permutation below).
  size_t LongMemOffset(NodeId v) const {
    return bank_->layout().LongMemOffset(v);
  }
  size_t ShortMemOffset(NodeId v) const {
    return bank_->layout().ShortMemOffset(v);
  }
  size_t ContextOffset(NodeId v, EdgeTypeId r) const {
    return bank_->layout().ContextOffset(v, r);
  }
  size_t AlphaOffset(NodeTypeId o) const {
    return bank_->layout().AlphaOffset(o);
  }

  /// Whole-parameter access.
  float* data() { return bank_->data(); }
  const float* data() const { return bank_->data(); }
  size_t size() const { return bank_->size(); }

  int dim() const { return bank_->layout().dim(); }
  size_t num_nodes() const { return bank_->layout().num_nodes(); }
  size_t num_relations() const { return bank_->layout().num_relations(); }
  size_t num_node_types() const { return bank_->layout().num_node_types(); }
  size_t num_shards() const { return bank_->layout().num_shards(); }

  /// Snapshot/rollback of all parameters (Algorithm 1's Φ_best).
  std::vector<float> Snapshot() const { return bank_->Snapshot(); }
  void Restore(const std::vector<float>& snapshot) {
    bank_->Restore(snapshot);
  }

  /// Physical ↔ canonical-logical layout permutation for any buffer
  /// indexed by this store's offsets (parameters, optimizer moments).
  /// `src`/`dst` are size() floats and must not alias.
  void GatherLogical(const float* src, float* dst) const {
    bank_->GatherLogical(src, dst);
  }
  void ScatterLogical(const float* src, float* dst) const {
    bank_->ScatterLogical(src, dst);
  }

  /// Logical offset of the float at physical `offset` — the per-row form
  /// of GatherLogical, for serializing sparse dirty rows in shard-count-
  /// invariant coordinates (delta checkpoints).
  size_t PhysicalToLogical(size_t offset) const {
    return bank_->layout().PhysicalToLogical(offset);
  }

  /// The bank behind this facade.
  store::EmbeddingBank& bank() { return *bank_; }
  const store::EmbeddingBank& bank() const { return *bank_; }

 private:
  std::shared_ptr<store::EmbeddingBank> bank_;
};

}  // namespace supa

#endif  // SUPA_CORE_EMBEDDING_STORE_H_
