// Parameter storage for SUPA: per-node long-term memory h^L, short-term
// memory h^S, per-(node, relation) context embeddings c^r, and per-node-type
// drift scalars α_o — all in one contiguous float buffer so the optimizer
// state and model snapshots are trivially aligned.

#ifndef SUPA_CORE_EMBEDDING_STORE_H_
#define SUPA_CORE_EMBEDDING_STORE_H_

#include <cstddef>
#include <vector>

#include "graph/types.h"
#include "util/rng.h"

namespace supa {

/// Layout (offsets in floats):
///   [0, N*d)            long-term memories
///   [N*d, 2N*d)         short-term memories
///   [2N*d, 2N*d + N*R*d) context embeddings (node-major, relation-minor)
///   [.., +T)            α scalars, one per node type
class EmbeddingStore {
 public:
  /// Allocates and randomly initializes all parameters with
  /// N(0, init_scale²); α starts at 0 (σ(0) = ½ drift coefficient).
  EmbeddingStore(size_t num_nodes, size_t num_relations,
                 size_t num_node_types, int dim, double init_scale, Rng& rng);

  /// h^L_v — mutable row of `dim` floats.
  float* LongMem(NodeId v) { return data() + v * dim_; }
  const float* LongMem(NodeId v) const { return data() + v * dim_; }

  /// h^S_v.
  float* ShortMem(NodeId v) { return data() + short_off_ + v * dim_; }
  const float* ShortMem(NodeId v) const {
    return data() + short_off_ + v * dim_;
  }

  /// c^r_v.
  float* Context(NodeId v, EdgeTypeId r) {
    return data() + ctx_off_ + (v * num_relations_ + r) * dim_;
  }
  const float* Context(NodeId v, EdgeTypeId r) const {
    return data() + ctx_off_ + (v * num_relations_ + r) * dim_;
  }

  /// α_o (stored as a float parameter).
  float* Alpha(NodeTypeId o) { return data() + alpha_off_ + o; }
  const float* Alpha(NodeTypeId o) const { return data() + alpha_off_ + o; }

  /// Parameter offsets (for the sparse optimizer).
  size_t LongMemOffset(NodeId v) const { return v * dim_; }
  size_t ShortMemOffset(NodeId v) const { return short_off_ + v * dim_; }
  size_t ContextOffset(NodeId v, EdgeTypeId r) const {
    return ctx_off_ + (v * num_relations_ + r) * dim_;
  }
  size_t AlphaOffset(NodeTypeId o) const { return alpha_off_ + o; }

  /// Whole-parameter access.
  float* data() { return params_.data(); }
  const float* data() const { return params_.data(); }
  size_t size() const { return params_.size(); }

  int dim() const { return dim_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_relations() const { return num_relations_; }
  size_t num_node_types() const { return num_node_types_; }

  /// Snapshot/rollback of all parameters (Algorithm 1's Φ_best).
  std::vector<float> Snapshot() const { return params_; }
  void Restore(const std::vector<float>& snapshot) { params_ = snapshot; }

 private:
  size_t num_nodes_;
  size_t num_relations_;
  size_t num_node_types_;
  int dim_;
  size_t short_off_;
  size_t ctx_off_;
  size_t alpha_off_;
  std::vector<float> params_;
};

}  // namespace supa

#endif  // SUPA_CORE_EMBEDDING_STORE_H_
