// Named ablation variants of SUPA used by the Table VII/VIII harnesses.

#ifndef SUPA_CORE_VARIANTS_H_
#define SUPA_CORE_VARIANTS_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "util/status.h"

namespace supa {

/// Applies the paper's named variant to a base configuration.
///
/// Loss variants (Table VII): "Linter", "Lprop", "Lneg" keep only that
/// loss; "woLinter", "woLprop", "woLneg" drop that loss.
/// Heterogeneity/dynamics variants (Table VIII): "sn", "se", "s", "nf",
/// "nd", "nt". "full" returns the config unchanged.
inline Result<SupaConfig> ApplyVariant(SupaConfig base,
                                       const std::string& variant) {
  if (variant == "full") return base;
  if (variant == "Linter") {
    base.use_prop_loss = false;
    base.use_neg_loss = false;
    return base;
  }
  if (variant == "Lprop") {
    base.use_inter_loss = false;
    base.use_neg_loss = false;
    return base;
  }
  if (variant == "Lneg") {
    base.use_inter_loss = false;
    base.use_prop_loss = false;
    return base;
  }
  if (variant == "woLinter") {
    base.use_inter_loss = false;
    return base;
  }
  if (variant == "woLprop") {
    base.use_prop_loss = false;
    return base;
  }
  if (variant == "woLneg") {
    base.use_neg_loss = false;
    return base;
  }
  if (variant == "sn") {
    base.shared_alpha = true;
    return base;
  }
  if (variant == "se") {
    base.shared_context = true;
    return base;
  }
  if (variant == "s") {
    base.shared_alpha = true;
    base.shared_context = true;
    return base;
  }
  if (variant == "nf") {
    base.use_short_term = false;
    return base;
  }
  if (variant == "nd") {
    base.use_prop_decay = false;
    return base;
  }
  if (variant == "nt") {
    base.use_short_term = false;
    base.use_prop_decay = false;
    base.use_update_decay = false;
    return base;
  }
  return Status::NotFound("unknown SUPA variant '" + variant + "'");
}

/// The Table VII variant names in row order.
inline std::vector<std::string> LossVariantNames() {
  return {"Linter", "Lprop", "Lneg", "woLinter", "woLprop", "woLneg"};
}

/// The Table VIII variant names in row order.
inline std::vector<std::string> HeteroVariantNames() {
  return {"sn", "se", "s", "nf", "nd", "nt"};
}

}  // namespace supa

#endif  // SUPA_CORE_VARIANTS_H_
