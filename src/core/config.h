// Hyper-parameter and ablation configuration for SUPA and InsLearn.
// Defaults follow §IV-C of the paper (scaled where the paper used a GPU).

#ifndef SUPA_CORE_CONFIG_H_
#define SUPA_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "util/math_utils.h"

namespace supa {

class CheckpointSink;  // core/durability.h

/// Model hyper-parameters (Table I) plus the ablation switches of
/// Tables VII and VIII.
struct SupaConfig {
  /// Embedding dimension d. The paper uses 128; benches default smaller.
  int dim = 64;
  /// k — number of sampled paths per interactive node.
  int num_walks = 4;
  /// l — walk length (number of node positions per path).
  int walk_len = 3;
  /// N_neg — negative samples per interactive node.
  int num_neg = 5;
  /// τ — propagation termination threshold; the paper sets g(τ) = 0.3.
  double tau = TauFromDecayValue(0.3);
  /// Adam learning rate (paper: 3e-3).
  double lr = 3e-3;
  /// Decoupled weight decay (paper: 1e-4).
  double weight_decay = 1e-4;
  /// Scale of the random initialization of all embeddings.
  double init_scale = 0.1;
  /// How many observed edges between rebuilds of the degree^{3/4}
  /// negative-sampling table.
  size_t neg_table_refresh = 2048;
  /// RNG seed for initialization and sampling.
  uint64_t seed = 42;
  /// Storage-engine shard count for the model's graph + embedding banks.
  /// 0 defers to SUPA_SHARDS (then 1). Placement only — results are
  /// bit-identical at any value (DESIGN.md §11).
  size_t shards = 0;

  // ---- Table VII: loss ablations -----------------------------------------
  bool use_inter_loss = true;
  bool use_prop_loss = true;
  bool use_neg_loss = true;

  // ---- Table VIII: heterogeneity ablations --------------------------------
  /// SUPA_sn: one shared α for all node types.
  bool shared_alpha = false;
  /// SUPA_se: one shared context embedding instead of per-relation ones.
  bool shared_context = false;

  // ---- Table VIII: dynamics ablations --------------------------------------
  /// SUPA_nf (negated): keep the short-term memory.
  bool use_short_term = true;
  /// SUPA_nd (negated): apply g(.) and the filter D(.) during propagation.
  bool use_prop_decay = true;
  /// SUPA_nt additionally disables the updater's forgetting.
  bool use_update_decay = true;
};

/// Commit-semantics mode of the multi-writer ingest pipeline
/// (DESIGN.md §13). Both modes plan (sample) edges serially in arrival
/// order, so the RNG stream, the sampled walks/negatives, and the final
/// edge set are always identical to the serial trainer's.
enum class IngestMode {
  /// One edge's math commits at a time (pipelined with the sampling of
  /// the next edge). Bit-identical to the serial trainer at any writer
  /// count — pinned by the ingest invariance test.
  kStrict,
  /// Row-disjoint runs of consecutive edges execute their embedding math
  /// concurrently; α drift updates are folded in at the group barrier in
  /// arrival order. Deterministic (independent of writer count and
  /// scheduling), same edge set and optimizer-step numbering as serial;
  /// diverges from strict only through within-group α staleness.
  kFast,
};

/// InsLearn workflow parameters (Algorithm 1), defaults per §IV-C.
struct InsLearnConfig {
  /// S_batch.
  size_t batch_size = 1024;
  /// N_iter.
  int max_iters = 30;
  /// I_valid.
  int valid_interval = 8;
  /// S_valid.
  size_t valid_size = 150;
  /// μ — early-stopping patience.
  int patience = 3;
  /// Negatives per validation edge when computing the validation MRR.
  size_t valid_negatives = 100;
  /// SUPA_w/oIns: when false, train by multi-epoch full passes instead of
  /// the single-pass batch workflow.
  bool single_pass = true;
  /// Epoch count for the w/oIns conventional workflow.
  int full_pass_epochs = 5;
  /// §III-A / Table VII: on *static* graphs (a single shared timestamp)
  /// InsLearn gains nothing over conventional training — the paper's own
  /// ablation shows SUPA_w/oIns is on par or better there. When true,
  /// SupaRecommender switches to the multi-epoch workflow for datasets
  /// whose edges all share one timestamp.
  bool auto_static_fallback = true;
  /// Algorithm 1 snapshots Φ_best on every validation improvement and
  /// rolls back at batch end. With delta snapshots both operations copy
  /// only the rows dirtied since a lazily-maintained baseline instead of
  /// the whole parameter buffer (bit-identical either way — see
  /// SupaModel::DeltaSnapshot); false forces the full-copy path.
  bool use_delta_snapshots = true;
  /// Seed for validation negative sampling.
  uint64_t seed = 7;
  /// Emit a throughput heartbeat log line (edges/s so far) roughly every
  /// this many wall-clock seconds while training. 0 disables it. Purely
  /// observational: the heartbeat never touches model state or RNG streams,
  /// so training is bit-identical with it on or off.
  double heartbeat_seconds = 0.0;
  /// Worker threads for the validation-MRR computation. 0 = auto
  /// (std::thread::hardware_concurrency); 1 runs fully serially. The
  /// validation score is bit-identical at every thread count: edges are
  /// cut into fixed shards with SplitMix64-derived per-shard seeds and
  /// reduced in shard order (see util/thread_pool.h).
  size_t threads = 0;
  /// Concurrent writer (embedding-math executor) threads for the ingest
  /// pipeline. 0 defers to SUPA_WRITER_THREADS (then 1); 1 keeps the
  /// historical serial TrainEdge loop. Values > 1 route training through
  /// IngestPipeline (core/ingest.h) in `ingest_mode`.
  size_t writer_threads = 0;
  /// Commit semantics when writer_threads > 1; see IngestMode.
  IngestMode ingest_mode = IngestMode::kStrict;
  /// Durability hook (core/durability.h): when set, the single-pass
  /// trainer calls OnCheckpoint at its durable cut points — once before
  /// the first batch, then at batch boundaries per `ckpt_interval`, and
  /// once after the final batch. Not owned; null disables durable cuts.
  CheckpointSink* checkpoint_sink = nullptr;
  /// Batches between periodic durable cuts (>= 1).
  size_t ckpt_interval = 1;
};

}  // namespace supa

#endif  // SUPA_CORE_CONFIG_H_
