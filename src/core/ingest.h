// Multi-writer ingest pipeline (DESIGN.md §13): parallel execution of
// training-step math behind a serial planner and a deterministic,
// arrival-order commit protocol.
//
// Architecture — plan / execute / commit:
//
//   * The *dispatcher* (the thread calling TrainSpan) plans edges strictly
//     in arrival order, pinning each edge's optimizer step number, and
//     batches consecutive plans into a *group* fanned out to writer tasks
//     on the shared thread pool.
//   * Writer tasks execute the plans' embedding math — never the graph,
//     the model RNG, or the optimizer's counters.
//   * When the group's math has drained, the dispatcher *commits* each
//     plan in arrival order and releases the store lease, so the applied
//     update sequence is pinned to batch-arrival order at any writer
//     count.
//
// Modes (IngestMode in core/config.h):
//   * kStrict caps groups at one edge. PlanEdge banks the full serial RNG
//     draw (walks, then negatives) on the dispatcher; ExecutePlan applies
//     row updates via StepAt under the group lease while the next edge is
//     being planned. Results are bit-identical to the serial trainer at
//     any writer count (pinned by core_ingest_pipeline_test) — the
//     pipeline only overlaps planning with math.
//   * kFast batches up to max_group_edges consecutive edges per group and
//     moves the sampling *into* the parallel execute stage: each executor
//     draws from a private counter-based RNG keyed by (seed, step) and
//     computes the edge's full gradient against the frozen group-start
//     embeddings (reads only — no lease held during execution). The
//     dispatcher then applies each plan with the ordinary serial
//     optimizer step at commit, under the store lease, in arrival order.
//     Results are deterministic and writer-count-independent — grouping
//     and the per-step RNG depend only on the edge sequence — but diverge
//     from the serial trainer in two documented ways: the per-step RNG
//     streams differ from the serial draw order, and edges sharing rows
//     within one group compute gradients against group-start values
//     (stale reads, surfaced as ingest.conflict_serializations; the
//     arrival-order commit means no update is ever lost).
//
// Deadlock/overlap rule: while the dispatcher holds a group lease it must
// not observe edges (ObserveEdge leases endpoint shards and would block on
// locks the dispatcher itself holds). TrainSpan therefore overlaps
// planning with group execution only on non-observing iterations; on the
// observing (first) iteration of a batch it plans between commits. kFast
// keeps the same rule for a second reason: ObserveEdge mutates the graph
// adjacency and periodically rebuilds the negative table, which executors
// read while sampling — observing strictly between groups keeps those
// reads race-free and the sampled graph state writer-count-independent.

#ifndef SUPA_CORE_INGEST_H_
#define SUPA_CORE_INGEST_H_

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/config.h"
#include "core/model.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/statusz.h"
#include "util/status.h"

namespace supa {

/// Resolves the writer-thread knob: explicit request, then the
/// SUPA_WRITER_THREADS environment variable, then 1 (serial).
inline size_t ResolveWriterThreads(size_t requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("SUPA_WRITER_THREADS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') requested = parsed;
    }
  }
  if (requested == 0) requested = 1;
  return requested;
}

struct IngestOptions {
  /// Concurrent executor tasks per group (resolved; >= 1).
  size_t writers = 1;
  IngestMode mode = IngestMode::kStrict;
  /// Group-size cap in kFast mode. Writer-count-independent on purpose:
  /// grouping (and therefore every result) depends only on the edge
  /// sequence, so fast-mode output is identical at 2 or 8 writers.
  size_t max_group_edges = 32;
};

/// Drives a span of training edges through the plan/execute/commit
/// pipeline. One instance per training run; reusable across spans. Not
/// thread-safe — TrainSpan runs on one dispatcher thread at a time.
class IngestPipeline {
 public:
  IngestPipeline(SupaModel& model, IngestOptions options);
  ~IngestPipeline();

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Trains edges [begin, end) of `edges`, equivalent to the serial loop
  ///   for i: TrainEdge(edges[i]); if (observe_edges) ObserveEdge(edges[i]);
  /// under this pipeline's mode semantics. `on_edge` runs on the
  /// dispatcher once per committed edge, in arrival order. Wall time
  /// spent inside ObserveEdge is added to *observe_seconds, the rest of
  /// the span to *train_seconds.
  Status TrainSpan(const std::vector<TemporalEdge>& edges, size_t begin,
                   size_t end, bool observe_edges,
                   const std::function<void(const TrainStats&)>& on_edge,
                   double* train_seconds, double* observe_seconds);

  const IngestOptions& options() const { return options_; }

 private:
  /// One in-flight group of row-disjoint plans plus its fan-out state.
  /// Two instances alternate so the dispatcher can plan the next group
  /// while the current one executes.
  struct Group {
    std::vector<EdgePlan> plans;  // capacity = group cap; [0, count) live
    size_t count = 0;
    uint64_t mask = 0;
    store::ShardWriteLease lease;
    std::atomic<size_t> next_plan{0};
    std::atomic<size_t> pending_tasks{0};
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // guarded by mu
  };

  /// Plans edges into `g` until the cap, the end of the span, or an
  /// error. Must not run while the dispatcher holds a group lease if
  /// observe_edges (see deadlock rule in the file comment).
  void FormGroup(Group* g, const std::vector<TemporalEdge>& edges,
                 bool observe_edges, double* observe_seconds);

  /// Takes the group's store lease: non-blocking first (counting shard
  /// contention), then mask-wait, timing the wait into
  /// ingest.lease_wait_us.
  void AcquireCommitLease(Group* g);

  /// Fans the group's plans out to the shared thread pool. kStrict takes
  /// the store lease here (executors write rows); kFast executors only
  /// read, so the lease waits until Commit.
  void Launch(Group* g);

  /// Waits until every plan in `g` has executed, stealing remaining
  /// plans onto the dispatcher instead of idling (scratch slot
  /// options_.writers).
  void WaitExecuted(Group* g);

  /// Commits `g`'s plans in arrival order, runs callbacks, releases the
  /// lease. kFast acquires the lease here and counts stale-read overlaps
  /// between same-group gradient row sets.
  void Commit(Group* g,
              const std::function<void(const TrainStats&)>& on_edge);

  /// Adds one execute loop's accumulated perf delta to writer slot `w`'s
  /// atomics (no-op for an all-zero delta — profiling off).
  void FoldWriterPerf(size_t w, const obs::PerfDelta& delta);

  std::vector<obs::StatusItem> StatusItems() const;

  SupaModel& model_;
  const IngestOptions options_;
  const size_t group_cap_;

  Group groups_[2];
  std::vector<SupaModel::ExecScratch> scratches_;  // one per writer
  /// Commit-time row set (kFast): gradient rows committed so far in the
  /// current group, probed to count stale-read overlaps.
  RowIndex footprint_;

  // Span-scoped dispatcher state.
  size_t next_edge_ = 0;
  size_t span_end_ = 0;
  uint64_t next_step_ = 0;
  Status error_;

  // Observability.
  obs::Counter planned_counter_;
  obs::Counter executed_counter_;
  obs::Counter groups_counter_;
  obs::Counter conflict_counter_;
  obs::Histogram lease_wait_hist_;
  obs::Histogram group_edges_hist_;
  std::unique_ptr<std::atomic<uint64_t>[]> writer_executed_;
  /// Per-writer hardware cost (cycles / LLC misses / thread CPU ns) from
  /// the execute-stage perf scopes, folded in once per drained group so
  /// the scrape-side reads are plain atomics. Slot options_.writers is
  /// the dispatcher's work-stealing share, like writer_executed_.
  std::unique_ptr<std::atomic<uint64_t>[]> writer_cycles_;
  std::unique_ptr<std::atomic<uint64_t>[]> writer_llc_misses_;
  std::unique_ptr<std::atomic<uint64_t>[]> writer_task_clock_ns_;
  std::atomic<uint64_t> committed_{0};
  std::optional<obs::StatusScope> status_scope_;
};

}  // namespace supa

#endif  // SUPA_CORE_INGEST_H_
