// The Influenced Graph Sampling Module (§III-B).
//
// For a new edge e = (u, v, r, t) it samples k metapath-constrained walks
// of length l from each interactive node; the union of the sampled paths is
// the influenced graph G_{s,e} consumed by the Time-aware Propagation
// Module.

#ifndef SUPA_CORE_SAMPLER_H_
#define SUPA_CORE_SAMPLER_H_

#include <vector>

#include "graph/walker.h"
#include "obs/metrics.h"

namespace supa {

/// The influenced graph w.r.t. one new edge: the paths sampled from u
/// (\vec{p}_u) and from v (\vec{p}_v). Walks with zero hops are omitted.
struct InfluencedGraph {
  std::vector<Walk> from_u;
  std::vector<Walk> from_v;

  /// Total number of propagation hops across all paths.
  size_t TotalSteps() const {
    size_t n = 0;
    for (const auto& w : from_u) n += w.steps.size();
    for (const auto& w : from_v) n += w.steps.size();
    return n;
  }
};

/// Samples influenced graphs against a fixed metapath schema set. Reads
/// go through the storage engine (node types + capped neighborhoods);
/// `num_node_types` bounds the head-type dispatch table, which the store
/// does not track (it belongs to the Schema layer above).
class InfluencedGraphSampler {
 public:
  /// `metapaths` must already be symmetric (Dataset stores them so).
  InfluencedGraphSampler(const store::GraphStore& store,
                         size_t num_node_types,
                         std::vector<MetapathSchema> metapaths,
                         int num_walks, int walk_len);

  /// Facade convenience: unwraps the graph's store and schema.
  InfluencedGraphSampler(const DynamicGraph& graph,
                         std::vector<MetapathSchema> metapaths,
                         int num_walks, int walk_len);

  /// Samples \vec{p}_u and \vec{p}_v for a new edge (u, v, ., .). For each
  /// walk a schema whose head matches the start node's type is chosen
  /// uniformly; nodes with no matching schema yield no paths.
  InfluencedGraph Sample(NodeId u, NodeId v, Rng& rng) const;

  /// Samples just the paths for one start node.
  void SampleFrom(NodeId start, Rng& rng, std::vector<Walk>* out) const;

  /// Arena variant of Sample: clears `out`, writes \vec{p}_u then
  /// \vec{p}_v into it, and sets `*u_count` to the number of u-walks —
  /// spans [0, *u_count) start at u, the rest at v. Draws the same rng
  /// sequence as Sample, so the two are interchangeable bit-for-bit.
  void SampleInto(NodeId u, NodeId v, Rng& rng, WalkBuffer* out,
                  size_t* u_count) const;

  /// Arena variant of SampleFrom: appends spans to `out` (zero-hop walks
  /// omitted, as in SampleFrom).
  void SampleFromInto(NodeId start, Rng& rng, WalkBuffer* out) const;

  const std::vector<MetapathSchema>& metapaths() const { return metapaths_; }

 private:
  Walker walker_;
  const store::GraphStore* store_;
  std::vector<MetapathSchema> metapaths_;
  /// metapath indices grouped by head node type.
  std::vector<std::vector<size_t>> by_head_type_;
  int num_walks_;
  int walk_len_;

  // Handles resolved once at construction (see obs/metrics.h); the hot
  // path only does relaxed adds on thread-local cells.
  obs::Counter walks_counter_;
  obs::Counter steps_counter_;
  obs::Counter arena_reuse_counter_;
  obs::Counter arena_grow_counter_;
  obs::Histogram walk_len_hist_;
};

}  // namespace supa

#endif  // SUPA_CORE_SAMPLER_H_
