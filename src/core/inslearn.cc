#include "core/inslearn.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>

#include "core/ingest.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/perf_counters.h"
#include "obs/statusz.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace supa {
namespace {

/// Fixed shard count for the parallel validation score — independent of
/// the thread count so the score is bit-identical at any `threads`
/// setting (see util/thread_pool.h).
constexpr size_t kValidationShards = 32;

/// Periodic throughput reporter and live-progress publisher for the
/// training loop. Tick() is called once per trained edge but only reads
/// the clock every 256 steps, so the between-beats cost is one relaxed
/// atomic increment and a branch. The constructor registers a /statusz
/// provider that reads the same atomics from the admin thread; the
/// destructor unregisters it (StatusScope), so a provider never outlives
/// its run. Observational only: never touches model state or RNG streams.
class Heartbeat {
 public:
  Heartbeat(double interval_seconds, EdgeRange range)
      : interval_(interval_seconds),
        edges_total_(range.size()),
        rate_gauge_(obs::MetricsRegistry::Global().GetGauge(
            "inslearn.edges_per_sec")),
        status_scope_("inslearn",
                      [this] { return StatusItems(); }) {}

  void Tick() {
    const uint64_t steps =
        steps_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (interval_ <= 0.0) return;
    if ((steps & 255) != 0) return;
    const double elapsed = timer_.ElapsedSeconds();
    if (elapsed - last_beat_ < interval_) return;
    const double rate = static_cast<double>(steps - last_steps_) /
                        std::max(elapsed - last_beat_, 1e-9);
    rate_gauge_.Set(rate);
    SUPA_LOG(INFO) << "[inslearn] trained " << steps << " edges, "
                   << static_cast<uint64_t>(rate) << " edges/s"
                   << QuantileSuffix();
    PollWarnings();
    last_beat_ = elapsed;
    last_steps_ = steps;
  }

  /// Coarse phase label shown on /statusz ("train", "validate", ...).
  void SetPhase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }

  /// Records a finished batch and its best validation score.
  void BatchDone(double best_score) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    best_score_.store(best_score, std::memory_order_relaxed);
  }

  /// Publishes the whole-run average rate; called once at run end.
  void Finish() {
    SetPhase("done");
    const uint64_t steps = steps_.load(std::memory_order_relaxed);
    if (steps == 0) return;
    const double elapsed = timer_.ElapsedSeconds();
    rate_gauge_.Set(static_cast<double>(steps) / std::max(elapsed, 1e-9));
  }

 private:
  /// Total of the five training phases' `perf.<phase>.<slot>` counters.
  /// Both the serial trainer and the ingest pipeline record those
  /// domains, so the per-edge hardware cost works at any writer count.
  static uint64_t PhasePerfSum(const obs::MetricsSnapshot& snapshot,
                               const char* slot) {
    uint64_t total = 0;
    for (const char* phase :
         {"sample", "update", "propagate", "negative", "optimize"}) {
      total += snapshot.CounterValue(std::string("perf.") + phase + "." +
                                     slot);
    }
    return total;
  }

  /// ", queue_wait_us p50/p95/p99 2/11/52" for each live histogram, plus
  /// the per-edge hardware cost since the last beat when profiling is on.
  /// One registry snapshot per beat — far off the hot path.
  std::string QuantileSuffix() {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global().Snapshot();
    struct NamedHist {
      const char* metric;
      const char* label;
    };
    std::string out;
    for (const NamedHist h : {NamedHist{"threadpool.queue_wait_us",
                                        "queue_wait_us"},
                              NamedHist{"snapshot.dirty_rows",
                                        "dirty_rows"}}) {
      const obs::MetricsSnapshot::Entry* e = snapshot.Find(h.metric);
      if (e == nullptr || e->count == 0) continue;
      char buf[96];
      std::snprintf(buf, sizeof(buf), ", %s p50/p95/p99 %.0f/%.0f/%.0f",
                    h.label, e->Quantile(0.50), e->Quantile(0.95),
                    e->Quantile(0.99));
      out += buf;
    }
    if (obs::PerfProfiler::Global().enabled()) {
      const uint64_t cycles = PhasePerfSum(snapshot, "cycles");
      const uint64_t llc_misses = PhasePerfSum(snapshot, "llc_misses");
      const uint64_t steps = steps_.load(std::memory_order_relaxed);
      if (steps > last_hw_steps_) {
        const double denom = static_cast<double>(steps - last_hw_steps_);
        const double cyc_per_edge =
            static_cast<double>(cycles - last_hw_cycles_) / denom;
        const double miss_per_edge =
            static_cast<double>(llc_misses - last_hw_llc_misses_) / denom;
        hw_cycles_per_edge_.store(cyc_per_edge, std::memory_order_relaxed);
        hw_llc_misses_per_edge_.store(miss_per_edge,
                                      std::memory_order_relaxed);
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      ", hw cyc/edge %.0f llc_miss/edge %.1f", cyc_per_edge,
                      miss_per_edge);
        out += buf;
        last_hw_steps_ = steps;
        last_hw_cycles_ = cycles;
        last_hw_llc_misses_ = llc_misses;
      }
    }
    return out;
  }

  /// Beat-time warning poll (training thread): surfaces new model-monitor
  /// alerts and trace-ring drops on the training log. Change detection via
  /// the monotone counters keeps a stable system silent; SUPA_LOG_EVERY_N
  /// bounds the output when a condition re-fires every beat.
  void PollWarnings() {
    const auto& monitor = obs::ModelMonitor::Global();
    const uint64_t raised = monitor.alerts_raised();
    if (raised > last_alerts_seen_) {
      last_alerts_seen_ = raised;
      if (monitor.worst_level() == obs::AlertLevel::kCritical) {
        SUPA_LOG_EVERY_N(ERROR, 10)
            << "[inslearn] model monitor critical alert (" << raised
            << " total firings) — see /modelz";
      } else {
        SUPA_LOG_EVERY_N(WARNING, 10)
            << "[inslearn] model drift warning (" << raised
            << " total alert firings) — see /modelz";
      }
    }
    const uint64_t dropped = obs::TraceRecorder::Global().dropped_events();
    if (dropped > last_trace_dropped_) {
      last_trace_dropped_ = dropped;
      SUPA_LOG_EVERY_N(WARNING, 10)
          << "[inslearn] trace ring dropped " << dropped
          << " events (oldest overwritten) — raise the ring capacity or "
             "export more often";
    }
  }

  std::vector<obs::StatusItem> StatusItems() const {
    char buf[32];
    std::vector<obs::StatusItem> items;
    items.push_back({"phase", phase_.load(std::memory_order_relaxed)});
    items.push_back({"edges_trained",
                     std::to_string(steps_.load(std::memory_order_relaxed))});
    items.push_back({"edges_total", std::to_string(edges_total_)});
    items.push_back(
        {"batches_done",
         std::to_string(batches_.load(std::memory_order_relaxed))});
    std::snprintf(buf, sizeof(buf), "%.4f",
                  best_score_.load(std::memory_order_relaxed));
    items.push_back({"best_score", buf});
    std::snprintf(buf, sizeof(buf), "%.0f", rate_gauge_.Value());
    items.push_back({"edges_per_sec", buf});
    if (obs::PerfProfiler::Global().enabled()) {
      std::snprintf(buf, sizeof(buf), "%.0f",
                    hw_cycles_per_edge_.load(std::memory_order_relaxed));
      items.push_back({"hw_cycles_per_edge", buf});
      std::snprintf(buf, sizeof(buf), "%.1f",
                    hw_llc_misses_per_edge_.load(std::memory_order_relaxed));
      items.push_back({"hw_llc_misses_per_edge", buf});
      items.push_back({"hw_perf_source",
                       obs::PerfSourceName(
                           obs::PerfProfiler::Global().source())});
    }
    return items;
  }

  const double interval_;
  const size_t edges_total_;
  obs::Gauge rate_gauge_;
  Timer timer_;
  std::atomic<uint64_t> steps_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<double> best_score_{0.0};
  std::atomic<const char*> phase_{"train"};
  /// Latest per-edge hardware cost, published at beat time for /statusz.
  std::atomic<double> hw_cycles_per_edge_{0.0};
  std::atomic<double> hw_llc_misses_per_edge_{0.0};
  uint64_t last_steps_ = 0;   // training thread only
  double last_beat_ = 0.0;    // training thread only
  uint64_t last_alerts_seen_ = 0;    // training thread only
  uint64_t last_trace_dropped_ = 0;  // training thread only
  uint64_t last_hw_steps_ = 0;       // training thread only
  uint64_t last_hw_cycles_ = 0;      // training thread only
  uint64_t last_hw_llc_misses_ = 0;  // training thread only
  obs::StatusScope status_scope_;  // last member: registered when the
                                   // atomics above are already constructed
};

/// Copies a finished report into the process-wide metrics registry.
/// Handles are looked up by name here — this runs once per Train() call,
/// not in the per-edge hot path.
void PublishReport(const InsLearnReport& report) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("inslearn.train_steps").Increment(report.train_steps);
  reg.GetCounter("inslearn.batches").Increment(report.num_batches);
  reg.GetCounter("inslearn.iterations").Increment(report.iterations);
  reg.GetCounter("inslearn.phase.train_ns").AddSeconds(report.train_seconds);
  reg.GetCounter("inslearn.phase.valid_ns").AddSeconds(report.valid_seconds);
  reg.GetCounter("inslearn.phase.snapshot_ns")
      .AddSeconds(report.snapshot_seconds);
  reg.GetCounter("inslearn.phase.observe_ns")
      .AddSeconds(report.observe_seconds);
  reg.GetCounter("inslearn.phase.checkpoint_ns")
      .AddSeconds(report.checkpoint_seconds);
}

}  // namespace

Result<InsLearnReport> InsLearnTrainer::Train(SupaModel& model,
                                              const Dataset& data,
                                              EdgeRange range,
                                              const TrainerCursor* resume) {
  if (range.end > data.edges.size() || range.begin > range.end) {
    return Status::OutOfRange("bad training range");
  }
  if (resume != nullptr) {
    if (!config_.single_pass) {
      return Status::InvalidArgument(
          "cursor resume requires the single-pass workflow");
    }
    if (resume->next_edge_index < range.begin ||
        resume->next_edge_index > range.end) {
      return Status::OutOfRange("resume cursor outside the training range");
    }
  }
  if (range.empty()) return InsLearnReport{};
  SUPA_TRACE_SPAN_CAT("inslearn/train", "inslearn");
  auto result = config_.single_pass
                    ? TrainSinglePass(model, data, range, resume)
                    : TrainFullPass(model, data, range);
  if (result.ok()) PublishReport(result.value());
  return result;
}

double InsLearnTrainer::ValidationScore(const SupaModel& model,
                                        const Dataset& data, size_t begin,
                                        size_t end, Rng& rng) const {
  if (end <= begin) return 0.0;
  SUPA_TRACE_SPAN_CAT("inslearn/validate", "inslearn");
  const auto& types = data.node_types;
  // One draw from the caller's stream keys this invocation, so successive
  // validation rounds see fresh negatives; within the invocation each
  // shard derives its own generator from that key, so the score does not
  // depend on how many threads execute the shards.
  const uint64_t base_seed = rng.Next();
  const size_t num_edges = end - begin;
  const size_t num_shards = std::min(num_edges, kValidationShards);
  std::vector<double> shard_sum(num_shards, 0.0);
  std::vector<size_t> shard_count(num_shards, 0);
  ParallelFor(config_.threads, num_shards, [&](size_t shard) {
    Rng shard_rng(SplitMix64At(base_seed, shard));
    const size_t shard_begin = begin + shard * num_edges / num_shards;
    const size_t shard_end = begin + (shard + 1) * num_edges / num_shards;
    for (size_t i = shard_begin; i < shard_end; ++i) {
      const TemporalEdge& e = data.edges[i];
      const double gt = model.Score(e.src, e.dst, e.type);
      size_t worse = 0;
      size_t drawn = 0;
      // Rank against sampled same-type negatives.
      const size_t want = config_.valid_negatives;
      for (size_t attempt = 0; attempt < want * 4 && drawn < want;
           ++attempt) {
        const NodeId cand = static_cast<NodeId>(shard_rng.Index(types.size()));
        if (cand == e.dst || cand == e.src) continue;
        if (types[cand] != types[e.dst]) continue;
        ++drawn;
        if (model.Score(e.src, cand, e.type) > gt) ++worse;
      }
      shard_sum[shard] += 1.0 / static_cast<double>(worse + 1);
      ++shard_count[shard];
    }
  });
  // Reduce in fixed shard order for bit-identical results at any thread
  // count.
  double sum = 0.0;
  size_t count = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    sum += shard_sum[shard];
    count += shard_count[shard];
  }
  obs::MetricsRegistry::Global()
      .GetCounter("inslearn.valid_rounds")
      .Increment();
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

Result<InsLearnReport> InsLearnTrainer::TrainSinglePass(
    SupaModel& model, const Dataset& data, EdgeRange range,
    const TrainerCursor* resume) {
  InsLearnReport report;
  Rng valid_rng(config_.seed);
  // Resuming from a durable cursor: the model already holds the cursor's
  // parameter/graph/RNG state (dur::Recover restored it); the trainer
  // restores its own stream and picks up at the cursor's batch boundary.
  // Cuts only ever happen at batch boundaries, so next_edge_index lands on
  // the same boundary lattice the uninterrupted run walked.
  const size_t start_edge =
      resume != nullptr ? static_cast<size_t>(resume->next_edge_index)
                        : range.begin;
  uint64_t batches_done = resume != nullptr ? resume->batches_done : 0;
  if (resume != nullptr) valid_rng.set_state(resume->valid_rng);
  Heartbeat heartbeat(config_.heartbeat_seconds, range);

  // One durable cut: captures a checkpoint link for the model's current
  // state plus everything the resumed trainer needs (stream position,
  // batch count, both RNG streams). The engine fills in the WAL sequence.
  auto durable_cut = [&](size_t next_edge) -> Status {
    if (config_.checkpoint_sink == nullptr) return Status::OK();
    StopwatchGuard guard(&report.checkpoint_seconds);
    SUPA_TRACE_SPAN_CAT("inslearn/checkpoint", "inslearn");
    heartbeat.SetPhase("checkpoint");
    TrainerCursor cursor;
    cursor.next_edge_index = next_edge;
    cursor.batches_done = batches_done;
    cursor.model_rng = model.rng_state();
    cursor.valid_rng = valid_rng.state();
    const Status st = config_.checkpoint_sink->OnCheckpoint(model, cursor);
    heartbeat.SetPhase("train");
    return st;
  };

  // With > 1 resolved writer threads the per-edge loops route through the
  // multi-writer ingest pipeline (DESIGN.md §13); otherwise they stay on
  // the historical serial TrainEdge loop.
  const size_t writers = ResolveWriterThreads(config_.writer_threads);
  std::unique_ptr<IngestPipeline> pipeline;
  if (writers > 1) {
    IngestOptions ingest;
    ingest.writers = writers;
    ingest.mode = config_.ingest_mode;
    pipeline = std::make_unique<IngestPipeline>(model, ingest);
  }
  auto on_edge = [&](const TrainStats&) {
    ++report.train_steps;
    heartbeat.Tick();
  };

  // Initial cut: guards the killed-during-first-batch window — recovery
  // always has at least this link to restart from.
  SUPA_RETURN_NOT_OK(durable_cut(start_edge));

  for (size_t b0 = start_edge; b0 < range.end; b0 += config_.batch_size) {
    SUPA_TRACE_SPAN_CAT("inslearn/batch", "inslearn");
    const size_t b1 = std::min(b0 + config_.batch_size, range.end);
    const size_t batch_len = b1 - b0;
    // STEP 2: the last S_valid edges of the batch are the validation set.
    size_t valid_len = std::min(config_.valid_size, batch_len / 5);
    const size_t train_end = b1 - valid_len;

    double best_score = 0.0;
    int patience_used = 0;
    // Φ_best is captured lazily on the first validation improvement; a
    // batch that never improves (or never validates) pays nothing.
    bool have_best = false;
    SupaModel::DeltaSnapshot best_delta;
    SupaModel::Snapshot best_full;

    bool first_iteration = true;
    for (int iter = 1; iter <= config_.max_iters; ++iter) {
      if (pipeline != nullptr) {
        SUPA_RETURN_NOT_OK(pipeline->TrainSpan(
            data.edges, b0, train_end, first_iteration, on_edge,
            &report.train_seconds, &report.observe_seconds));
      } else {
        for (size_t i = b0; i < train_end; ++i) {
          {
            StopwatchGuard guard(&report.train_seconds);
            auto stats = model.TrainEdge(data.edges[i]);
            if (!stats.ok()) return stats.status();
          }
          ++report.train_steps;
          heartbeat.Tick();
          if (first_iteration) {
            StopwatchGuard guard(&report.observe_seconds);
            SUPA_RETURN_NOT_OK(model.ObserveEdge(data.edges[i]));
          }
        }
      }
      first_iteration = false;
      ++report.iterations;

      // STEP 3–4: periodic validation with early stopping.
      if (valid_len > 0 && iter % config_.valid_interval == 0) {
        double score = 0.0;
        {
          StopwatchGuard guard(&report.valid_seconds);
          heartbeat.SetPhase("validate");
          score = ValidationScore(model, data, train_end, b1, valid_rng);
          heartbeat.SetPhase("train");
        }
        if (score > best_score) {
          best_score = score;
          {
            StopwatchGuard guard(&report.snapshot_seconds);
            SUPA_TRACE_SPAN_CAT("inslearn/snapshot", "inslearn");
            if (config_.use_delta_snapshots) {
              best_delta = model.TakeDeltaSnapshot();
            } else {
              best_full = model.TakeSnapshot();
            }
          }
          have_best = true;
          patience_used = 0;
        } else {
          if (++patience_used > config_.patience) break;
        }
      }
      if (valid_len == 0) break;  // nothing to validate against: one pass
    }

    // STEP 5: roll back to the best validated model.
    if (have_best) {
      StopwatchGuard guard(&report.snapshot_seconds);
      SUPA_TRACE_SPAN_CAT("inslearn/rollback", "inslearn");
      if (config_.use_delta_snapshots) {
        model.RestoreDeltaSnapshot(best_delta);
      } else {
        model.RestoreSnapshot(best_full);
      }
    }
    report.batch_scores.push_back(best_score);
    heartbeat.BatchDone(best_score);

    // The validation edges are part of the stream; make them visible to
    // subsequent batches (graph only; per Algorithm 1 they are not trained).
    {
      StopwatchGuard guard(&report.observe_seconds);
      for (size_t i = train_end; i < b1; ++i) {
        SUPA_RETURN_NOT_OK(model.ObserveEdge(data.edges[i]));
      }
    }
    ++report.num_batches;
    ++batches_done;
    // Batch boundary: re-export the store.shard_* gauges so Prometheus
    // scrapes track shard balance without forcing a snapshot publish.
    model.graph_store().RefreshShardMetrics();
    // Durable cut point: no Φ_best snapshot is in flight and this batch's
    // validation edges are observed, so the state here is exactly what a
    // resumed trainer starting at b1 needs. The final boundary is always
    // cut so recovery never replays a completed run's tail.
    const size_t interval = std::max<size_t>(config_.ckpt_interval, 1);
    if (batches_done % interval == 0 || b1 == range.end) {
      SUPA_RETURN_NOT_OK(durable_cut(b1));
    }
  }
  heartbeat.Finish();
  return report;
}

Result<InsLearnReport> InsLearnTrainer::TrainFullPass(SupaModel& model,
                                                      const Dataset& data,
                                                      EdgeRange range) {
  InsLearnReport report;
  report.num_batches = 1;
  Rng valid_rng(config_.seed);
  Heartbeat heartbeat(config_.heartbeat_seconds, range);

  // Same routing rule as TrainSinglePass: the pipeline takes over the
  // per-edge loop when more than one writer thread is resolved.
  const size_t writers = ResolveWriterThreads(config_.writer_threads);
  std::unique_ptr<IngestPipeline> pipeline;
  if (writers > 1) {
    IngestOptions ingest;
    ingest.writers = writers;
    ingest.mode = config_.ingest_mode;
    pipeline = std::make_unique<IngestPipeline>(model, ingest);
  }
  auto on_edge = [&](const TrainStats&) {
    ++report.train_steps;
    heartbeat.Tick();
  };

  const size_t n = range.size();
  size_t valid_len = std::min(config_.valid_size, n / 5);
  const size_t train_end = range.end - valid_len;

  double best_score = 0.0;
  int patience_used = 0;
  // Lazily captured on the first validation improvement, as in
  // TrainSinglePass.
  bool have_best = false;
  SupaModel::DeltaSnapshot best_delta;
  SupaModel::Snapshot best_full;

  for (int epoch = 1; epoch <= config_.full_pass_epochs; ++epoch) {
    SUPA_TRACE_SPAN_CAT("inslearn/epoch", "inslearn");
    if (pipeline != nullptr) {
      SUPA_RETURN_NOT_OK(pipeline->TrainSpan(
          data.edges, range.begin, train_end, epoch == 1, on_edge,
          &report.train_seconds, &report.observe_seconds));
    } else {
      for (size_t i = range.begin; i < train_end; ++i) {
        {
          StopwatchGuard guard(&report.train_seconds);
          auto stats = model.TrainEdge(data.edges[i]);
          if (!stats.ok()) return stats.status();
        }
        ++report.train_steps;
        heartbeat.Tick();
        if (epoch == 1) {
          StopwatchGuard guard(&report.observe_seconds);
          SUPA_RETURN_NOT_OK(model.ObserveEdge(data.edges[i]));
        }
      }
    }
    ++report.iterations;
    if (valid_len > 0) {
      double score = 0.0;
      {
        StopwatchGuard guard(&report.valid_seconds);
        heartbeat.SetPhase("validate");
        score = ValidationScore(model, data, train_end, range.end, valid_rng);
        heartbeat.SetPhase("train");
      }
      report.batch_scores.push_back(score);
      heartbeat.BatchDone(score);
      if (score > best_score) {
        best_score = score;
        {
          StopwatchGuard guard(&report.snapshot_seconds);
          SUPA_TRACE_SPAN_CAT("inslearn/snapshot", "inslearn");
          if (config_.use_delta_snapshots) {
            best_delta = model.TakeDeltaSnapshot();
          } else {
            best_full = model.TakeSnapshot();
          }
        }
        have_best = true;
        patience_used = 0;
      } else if (++patience_used > config_.patience) {
        break;
      }
    }
    model.graph_store().RefreshShardMetrics();
  }
  if (have_best) {
    StopwatchGuard guard(&report.snapshot_seconds);
    SUPA_TRACE_SPAN_CAT("inslearn/rollback", "inslearn");
    if (config_.use_delta_snapshots) {
      model.RestoreDeltaSnapshot(best_delta);
    } else {
      model.RestoreSnapshot(best_full);
    }
  }
  {
    StopwatchGuard guard(&report.observe_seconds);
    for (size_t i = train_end; i < range.end; ++i) {
      SUPA_RETURN_NOT_OK(model.ObserveEdge(data.edges[i]));
    }
  }
  heartbeat.Finish();
  return report;
}

}  // namespace supa
