#include "core/adam.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace supa {

namespace {
/// Initial slot-table size; must be a power of two.
constexpr size_t kInitialSlots = 64;
}  // namespace

uint32_t RowIndex::FindOrInsert(size_t offset, uint32_t len, bool* inserted) {
  if (table_.empty()) Rehash(kInitialSlots);
  // Grow at 50% load so probe chains stay short.
  if ((entries_.size() + 1) * 2 > table_.size()) Rehash(table_.size() * 2);

  size_t slot = Hash(offset) & mask_;
  while (true) {
    const uint32_t id_plus1 = table_[slot];
    if (id_plus1 == 0) {
      const uint32_t id = static_cast<uint32_t>(entries_.size());
      table_[slot] = id + 1;
      entries_.push_back(Entry{offset, len, static_cast<uint32_t>(slot)});
      *inserted = true;
      return id;
    }
    const Entry& e = entries_[id_plus1 - 1];
    if (e.offset == offset) {
      assert(e.len == len);
      *inserted = false;
      return id_plus1 - 1;
    }
    slot = (slot + 1) & mask_;
  }
}

bool RowIndex::Contains(size_t offset) const {
  if (table_.empty()) return false;
  size_t slot = Hash(offset) & mask_;
  while (true) {
    const uint32_t id_plus1 = table_[slot];
    if (id_plus1 == 0) return false;
    if (entries_[id_plus1 - 1].offset == offset) return true;
    slot = (slot + 1) & mask_;
  }
}

void RowIndex::Rehash(size_t new_slots) {
  table_.assign(new_slots, 0);
  mask_ = new_slots - 1;
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    size_t slot = Hash(entries_[id].offset) & mask_;
    while (table_[slot] != 0) slot = (slot + 1) & mask_;
    table_[slot] = id + 1;
    entries_[id].slot = static_cast<uint32_t>(slot);
  }
}

void RowIndex::Clear() {
  // Reset only the slots that are in use — O(entries), not O(table).
  for (const Entry& e : entries_) table_[e.slot] = 0;
  entries_.clear();
}

float* GradBuffer::Row(size_t offset, size_t len) {
  bool inserted = false;
  const uint32_t id =
      index_.FindOrInsert(offset, static_cast<uint32_t>(len), &inserted);
  if (inserted) {
    pos_.push_back(data_.size());
    data_.resize(data_.size() + len, 0.0f);
  }
  return data_.data() + pos_[id];
}

void GradBuffer::Accumulate(size_t offset, size_t len, double alpha,
                            const float* vec) {
  float* row = Row(offset, len);
  for (size_t i = 0; i < len; ++i) {
    row[i] += static_cast<float>(alpha * vec[i]);
  }
}

void GradBuffer::AccumulateScalar(size_t offset, double g) {
  float* row = Row(offset, 1);
  row[0] += static_cast<float>(g);
}

void GradBuffer::Clear() {
  index_.Clear();
  pos_.clear();
  data_.clear();
}

SparseAdam::SparseAdam(size_t num_params, double lr, double weight_decay,
                       double beta1, double beta2, double eps)
    : lr_(lr),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      m_(num_params, 0.0f),
      v_(num_params, 0.0f) {}

void SparseAdam::UpdateRow(size_t offset, const float* g, size_t len,
                           double bc1, double bc2, float* params,
                           StepStats* stats) {
  for (size_t i = 0; i < len; ++i) {
    const size_t p = offset + i;
    const double gi = g[i];
    m_[p] = static_cast<float>(beta1_ * m_[p] + (1.0 - beta1_) * gi);
    v_[p] = static_cast<float>(beta2_ * v_[p] + (1.0 - beta2_) * gi * gi);
    const double mhat = m_[p] / bc1;
    const double vhat = v_[p] / bc2;
    double update = mhat / (std::sqrt(vhat) + eps_);
    // Decoupled weight decay (AdamW).
    update += weight_decay_ * params[p];
    const double before = params[p];
    params[p] = static_cast<float>(params[p] - lr_ * update);
    if (stats != nullptr) {
      // Reads only — the update above is byte-for-byte the unmonitored
      // computation.
      const double after = params[p];
      const double change = after - before;
      stats->sum_update_sq += change * change;
      stats->sum_param_sq_before += before * before;
      stats->sum_param_sq_after += after * after;
    }
  }
}

void SparseAdam::Step(const GradBuffer& grads, float* params,
                      StepStats* stats) {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  grads.ForEach([&](size_t offset, const float* g, size_t len) {
    MarkRow(offset, static_cast<uint32_t>(len));
    UpdateRow(offset, g, len, bc1, bc2, params, stats);
  });
}

void SparseAdam::StepAt(uint64_t step, const GradBuffer& grads, float* params,
                        BankedDirty* dirty, StepStats* stats) {
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step));
  grads.ForEach([&](size_t offset, const float* g, size_t len) {
    dirty->emplace_back(offset, static_cast<uint32_t>(len));
    UpdateRow(offset, g, len, bc1, bc2, params, stats);
  });
}

void SparseAdam::StepScalarAt(uint64_t step, size_t offset, float grad,
                              float* params) {
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step));
  MarkRow(offset, 1);
  UpdateRow(offset, &grad, 1, bc1, bc2, params, nullptr);
}

void SparseAdam::Restore(const State& state) {
  m_ = state.m;
  v_ = state.v;
  step_ = state.step;
  // A whole-buffer rewrite: row tracking can no longer bound what changed
  // since the last checkpoint link, so force the next link to a full base.
  MarkAllCheckpointDirty();
}

}  // namespace supa
