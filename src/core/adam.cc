#include "core/adam.h"

#include <cassert>
#include <cmath>
#include <cstring>

namespace supa {

float* GradBuffer::Row(size_t offset, size_t len) {
  auto it = index_.find(offset);
  if (it == index_.end()) {
    Slot slot{data_.size(), len};
    data_.resize(data_.size() + len, 0.0f);
    it = index_.emplace(offset, slot).first;
  }
  assert(it->second.len == len);
  return data_.data() + it->second.pos;
}

void GradBuffer::Accumulate(size_t offset, size_t len, double alpha,
                            const float* vec) {
  float* row = Row(offset, len);
  for (size_t i = 0; i < len; ++i) {
    row[i] += static_cast<float>(alpha * vec[i]);
  }
}

void GradBuffer::AccumulateScalar(size_t offset, double g) {
  float* row = Row(offset, 1);
  row[0] += static_cast<float>(g);
}

void GradBuffer::Clear() {
  index_.clear();
  data_.clear();
}

SparseAdam::SparseAdam(size_t num_params, double lr, double weight_decay,
                       double beta1, double beta2, double eps)
    : lr_(lr),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      m_(num_params, 0.0f),
      v_(num_params, 0.0f) {}

void SparseAdam::Step(const GradBuffer& grads, float* params) {
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  grads.ForEach([&](size_t offset, const float* g, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      const size_t p = offset + i;
      const double gi = g[i];
      m_[p] = static_cast<float>(beta1_ * m_[p] + (1.0 - beta1_) * gi);
      v_[p] = static_cast<float>(beta2_ * v_[p] + (1.0 - beta2_) * gi * gi);
      const double mhat = m_[p] / bc1;
      const double vhat = v_[p] / bc2;
      double update = mhat / (std::sqrt(vhat) + eps_);
      // Decoupled weight decay (AdamW).
      update += weight_decay_ * params[p];
      params[p] = static_cast<float>(params[p] - lr_ * update);
    }
  });
}

void SparseAdam::Restore(const State& state) {
  m_ = state.m;
  v_ = state.v;
  step_ = state.step;
}

}  // namespace supa
