#include "core/ingest.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace supa {

IngestPipeline::IngestPipeline(SupaModel& model, IngestOptions options)
    : model_(model),
      options_([&options] {
        IngestOptions o = options;
        if (o.writers == 0) o.writers = 1;
        if (o.max_group_edges == 0) o.max_group_edges = 1;
        return o;
      }()),
      group_cap_(options_.mode == IngestMode::kStrict
                     ? 1
                     : options_.max_group_edges) {
  for (Group& g : groups_) g.plans.resize(group_cap_);
  // One scratch per writer plus one for the dispatcher's work-stealing
  // wait (index options_.writers).
  scratches_.resize(options_.writers + 1);
  // Value-initialized arrays: all per-writer counts start at zero.
  writer_executed_ =
      std::make_unique<std::atomic<uint64_t>[]>(options_.writers + 1);
  writer_cycles_ =
      std::make_unique<std::atomic<uint64_t>[]>(options_.writers + 1);
  writer_llc_misses_ =
      std::make_unique<std::atomic<uint64_t>[]>(options_.writers + 1);
  writer_task_clock_ns_ =
      std::make_unique<std::atomic<uint64_t>[]>(options_.writers + 1);

  auto& reg = obs::MetricsRegistry::Global();
  planned_counter_ = reg.GetCounter("ingest.planned_edges");
  executed_counter_ = reg.GetCounter("ingest.executed_edges");
  groups_counter_ = reg.GetCounter("ingest.groups");
  conflict_counter_ = reg.GetCounter("ingest.conflict_serializations");
  lease_wait_hist_ = reg.GetHistogram(
      "ingest.lease_wait_us",
      obs::MetricsRegistry::ExponentialBounds(1.0, 4.0, 12));
  group_edges_hist_ = reg.GetHistogram(
      "ingest.group_edges",
      obs::MetricsRegistry::ExponentialBounds(1.0, 2.0, 8));
  status_scope_.emplace("ingest", [this] { return StatusItems(); });
}

IngestPipeline::~IngestPipeline() = default;

std::vector<obs::StatusItem> IngestPipeline::StatusItems() const {
  std::vector<obs::StatusItem> items;
  items.push_back(
      {"mode", options_.mode == IngestMode::kStrict ? "strict" : "fast"});
  items.push_back({"writers", std::to_string(options_.writers)});
  items.push_back({"group_cap", std::to_string(group_cap_)});
  items.push_back(
      {"committed_edges",
       std::to_string(committed_.load(std::memory_order_relaxed))});
  // Per-writer hardware cost rows appear once profiling has recorded
  // something (task-clock is nonzero on every tier of the ladder).
  const bool have_perf =
      writer_task_clock_ns_[0].load(std::memory_order_relaxed) != 0 ||
      writer_task_clock_ns_[options_.writers].load(
          std::memory_order_relaxed) != 0;
  auto writer_rows = [&](const std::string& label, size_t w) {
    items.push_back(
        {label + "_executed",
         std::to_string(writer_executed_[w].load(std::memory_order_relaxed))});
    if (!have_perf) return;
    items.push_back(
        {label + "_cycles",
         std::to_string(writer_cycles_[w].load(std::memory_order_relaxed))});
    items.push_back({label + "_llc_misses",
                     std::to_string(writer_llc_misses_[w].load(
                         std::memory_order_relaxed))});
    items.push_back({label + "_cpu_ms",
                     std::to_string(writer_task_clock_ns_[w].load(
                                        std::memory_order_relaxed) /
                                    1000000)});
  };
  for (size_t w = 0; w < options_.writers; ++w) {
    writer_rows("writer_" + std::to_string(w), w);
  }
  writer_rows("dispatcher", options_.writers);
  return items;
}

void IngestPipeline::FoldWriterPerf(size_t w, const obs::PerfDelta& delta) {
  if (delta.task_clock_ns == 0 && delta.cycles == 0) return;
  writer_cycles_[w].fetch_add(delta.cycles, std::memory_order_relaxed);
  writer_llc_misses_[w].fetch_add(delta.llc_misses,
                                  std::memory_order_relaxed);
  writer_task_clock_ns_[w].fetch_add(delta.task_clock_ns,
                                     std::memory_order_relaxed);
}

void IngestPipeline::FormGroup(Group* g, const std::vector<TemporalEdge>& edges,
                               bool observe_edges, double* observe_seconds) {
  g->count = 0;
  // Both modes commit under the whole-store lease; kStrict additionally
  // holds it across execution (Launch).
  g->mask = model_.graph_store().all_shards_mask();
  if (!error_.ok()) return;
  SUPA_TRACE_SPAN_CAT("ingest/form_group", "ingest");
  SUPA_PERF_SCOPE(kIngestPlan);
  const bool deferred = options_.mode == IngestMode::kFast;

  while (g->count < group_cap_) {
    EdgePlan& slot = g->plans[g->count];
    if (next_edge_ >= span_end_) break;
    const TemporalEdge& e = edges[next_edge_];
    // kStrict banks the full serial RNG draw (walks, negatives) here, in
    // arrival order; kFast defers sampling to the executor's per-step
    // stream and only banks the pre-observation graph reads.
    const Status st =
        deferred ? model_.PlanEdgeDeferred(e, TrainOptions{}, &slot)
                 : model_.PlanEdge(e, TrainOptions{}, /*want_footprint=*/false,
                                   &slot);
    if (!st.ok()) {
      error_ = st;
      return;
    }
    slot.step = ++next_step_;
    planned_counter_.Increment();
    ++next_edge_;
    if (observe_edges) {
      // Observation right after the plan keeps the serial graph/RNG
      // order: plan(i) draws before observe(i) mutates the graph, and
      // plan(i+1) sees edge i inserted — exactly like the serial
      // train-then-observe loop, since the math never reads the graph.
      // (kFast samples at execute time instead, but observing iterations
      // never overlap execution — see TrainSpan — so every executor
      // still samples the same post-observe graph state regardless of
      // writer count.)
      StopwatchGuard guard(observe_seconds);
      const Status ost = model_.ObserveEdge(e);
      if (!ost.ok()) error_ = ost;  // e still trains, like serial
    }
    ++g->count;
    if (!error_.ok()) break;  // observe failed; drain what was planned
  }
}

void IngestPipeline::AcquireCommitLease(Group* g) {
  store::GraphStore& store = model_.graph_store();
  Timer wait;
  if (!store.TryLeaseMask(g->mask, &g->lease)) {
    SUPA_TRACE_SPAN_CAT("ingest/lease_wait", "ingest");
    g->lease = store.LeaseMask(g->mask);
  }
  lease_wait_hist_.Observe(wait.ElapsedSeconds() * 1e6);
}

void IngestPipeline::Launch(Group* g) {
  const bool deferred = options_.mode == IngestMode::kFast;
  // kStrict executors write rows (StepAt), so the store lease spans the
  // whole execute window. kFast executors only *read* embeddings — all
  // writes wait for Commit — so the lease is taken there instead and
  // snapshot publishes can interleave with execution.
  if (!deferred) AcquireCommitLease(g);

  g->next_plan.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(g->mu);
    g->done = false;
  }
  const size_t tasks = std::min(options_.writers, g->count);
  g->pending_tasks.store(tasks, std::memory_order_relaxed);
  ThreadPool& pool = ThreadPool::Shared();
  for (size_t w = 0; w < tasks; ++w) {
    pool.Submit([this, g, w, deferred] {
      SupaModel::ExecScratch& scratch = scratches_[w];
      obs::PerfDelta perf;
      size_t i;
      while ((i = g->next_plan.fetch_add(1, std::memory_order_relaxed)) <
             g->count) {
        SUPA_PERF_SCOPE_OUT(kIngestExecute, &perf);
        if (deferred) {
          model_.ExecutePlanDeferred(&g->plans[i], &scratch);
        } else {
          model_.ExecutePlan(&g->plans[i], &scratch);
        }
        executed_counter_.Increment();
        writer_executed_[w].fetch_add(1, std::memory_order_relaxed);
      }
      FoldWriterPerf(w, perf);
      if (g->pending_tasks.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(g->mu);
        g->done = true;
        g->cv.notify_one();
      }
    });
  }
}

void IngestPipeline::WaitExecuted(Group* g) {
  SUPA_TRACE_SPAN_CAT("ingest/wait", "ingest");
  // Work-stealing wait: once planning is done the dispatcher has nothing
  // left to do, so it drains the group's remaining plans itself instead
  // of blocking. On saturated or single-core hosts this keeps the
  // pipeline's cost near the serial loop's (no idle blocking while a
  // queued task waits for a core); on idle multi-core hosts the workers
  // usually empty the counter first and this loop exits immediately.
  const bool deferred = options_.mode == IngestMode::kFast;
  SupaModel::ExecScratch& scratch = scratches_[options_.writers];
  obs::PerfDelta perf;
  size_t i;
  while ((i = g->next_plan.fetch_add(1, std::memory_order_relaxed)) <
         g->count) {
    SUPA_PERF_SCOPE_OUT(kIngestExecute, &perf);
    if (deferred) {
      model_.ExecutePlanDeferred(&g->plans[i], &scratch);
    } else {
      model_.ExecutePlan(&g->plans[i], &scratch);
    }
    executed_counter_.Increment();
    writer_executed_[options_.writers].fetch_add(1,
                                                 std::memory_order_relaxed);
  }
  FoldWriterPerf(options_.writers, perf);
  std::unique_lock<std::mutex> lk(g->mu);
  g->cv.wait(lk, [g] { return g->done; });
}

void IngestPipeline::Commit(
    Group* g, const std::function<void(const TrainStats&)>& on_edge) {
  SUPA_TRACE_SPAN_CAT("ingest/commit", "ingest");
  SUPA_PERF_SCOPE(kIngestCommit);
  const bool deferred = options_.mode == IngestMode::kFast;
  if (deferred) {
    AcquireCommitLease(g);
    footprint_.Clear();
  }
  for (size_t i = 0; i < g->count; ++i) {
    if (deferred) {
      // Divergence diagnostic: an edge whose gradient rows overlap an
      // earlier same-group edge computed against group-start values that
      // the earlier commit has since changed. Deterministic (depends only
      // on the edge sequence and group boundaries), surfaced as
      // ingest.conflict_serializations.
      bool stale = false;
      g->plans[i].grads.ForEach([&](size_t offset, const float*,
                                    uint32_t len) {
        bool inserted = false;
        footprint_.FindOrInsert(offset, len, &inserted);
        if (!inserted) stale = true;
      });
      if (stale) conflict_counter_.Increment();
      model_.CommitPlanDeferred(g->plans[i]);
    } else {
      model_.CommitPlan(g->plans[i]);
    }
    committed_.fetch_add(1, std::memory_order_relaxed);
    if (on_edge) on_edge(g->plans[i].stats);
  }
  g->lease.Release();
  groups_counter_.Increment();
  group_edges_hist_.Observe(static_cast<double>(g->count));
}

Status IngestPipeline::TrainSpan(
    const std::vector<TemporalEdge>& edges, size_t begin, size_t end,
    bool observe_edges, const std::function<void(const TrainStats&)>& on_edge,
    double* train_seconds, double* observe_seconds) {
  if (end > edges.size() || begin > end) {
    return Status::OutOfRange("bad ingest span");
  }
  SUPA_TRACE_SPAN_CAT("ingest/span", "ingest");
  Timer span_timer;
  double observe_acc = 0.0;
  next_edge_ = begin;
  span_end_ = end;
  next_step_ = model_.optimizer_step_count();
  error_ = Status::OK();

  Group* cur = &groups_[0];
  Group* nxt = &groups_[1];
  FormGroup(cur, edges, observe_edges, &observe_acc);
  while (cur->count > 0) {
    Launch(cur);
    // Overlap: plan the next group while this one's math executes — but
    // only when not observing, because ObserveEdge leases endpoint shards
    // and the dispatcher is currently holding the group lease (a
    // self-deadlock on a std::mutex).
    if (!observe_edges) FormGroup(nxt, edges, observe_edges, &observe_acc);
    WaitExecuted(cur);
    Commit(cur, on_edge);
    if (observe_edges) FormGroup(nxt, edges, observe_edges, &observe_acc);
    std::swap(cur, nxt);
  }

  if (observe_seconds != nullptr) *observe_seconds += observe_acc;
  if (train_seconds != nullptr) {
    *train_seconds += span_timer.ElapsedSeconds() - observe_acc;
  }
  return error_;
}

}  // namespace supa
