#include "core/sampler.h"

namespace supa {

InfluencedGraphSampler::InfluencedGraphSampler(
    const DynamicGraph& graph, std::vector<MetapathSchema> metapaths,
    int num_walks, int walk_len)
    : InfluencedGraphSampler(graph.store(),
                             graph.schema().num_node_types(),
                             std::move(metapaths), num_walks, walk_len) {}

InfluencedGraphSampler::InfluencedGraphSampler(
    const store::GraphStore& store, size_t num_node_types,
    std::vector<MetapathSchema> metapaths, int num_walks, int walk_len)
    : walker_(store),
      store_(&store),
      metapaths_(std::move(metapaths)),
      num_walks_(num_walks),
      walk_len_(walk_len),
      walks_counter_(
          obs::MetricsRegistry::Global().GetCounter("sampler.walks")),
      steps_counter_(
          obs::MetricsRegistry::Global().GetCounter("sampler.walk_steps")),
      arena_reuse_counter_(
          obs::MetricsRegistry::Global().GetCounter("sampler.arena_reuses")),
      arena_grow_counter_(
          obs::MetricsRegistry::Global().GetCounter("sampler.arena_grows")),
      walk_len_hist_(obs::MetricsRegistry::Global().GetHistogram(
          "sampler.walk_len", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0})) {
  by_head_type_.resize(num_node_types);
  for (size_t i = 0; i < metapaths_.size(); ++i) {
    by_head_type_[metapaths_[i].head()].push_back(i);
  }
}

void InfluencedGraphSampler::SampleFrom(NodeId start, Rng& rng,
                                        std::vector<Walk>* out) const {
  const auto& candidates = by_head_type_[store_->NodeType(start)];
  if (candidates.empty()) return;
  for (int w = 0; w < num_walks_; ++w) {
    const size_t mp = candidates[rng.Index(candidates.size())];
    Walk walk = walker_.SampleMetapathWalk(start, metapaths_[mp],
                                           static_cast<size_t>(walk_len_),
                                           rng);
    if (!walk.steps.empty()) out->push_back(std::move(walk));
  }
}

InfluencedGraph InfluencedGraphSampler::Sample(NodeId u, NodeId v,
                                               Rng& rng) const {
  InfluencedGraph g;
  SampleFrom(u, rng, &g.from_u);
  SampleFrom(v, rng, &g.from_v);
  return g;
}

void InfluencedGraphSampler::SampleFromInto(NodeId start, Rng& rng,
                                            WalkBuffer* out) const {
  const auto& candidates = by_head_type_[store_->NodeType(start)];
  if (candidates.empty()) return;
  for (int w = 0; w < num_walks_; ++w) {
    const size_t mp = candidates[rng.Index(candidates.size())];
    walker_.SampleMetapathWalkInto(start, metapaths_[mp],
                                   static_cast<size_t>(walk_len_), rng, out);
  }
}

void InfluencedGraphSampler::SampleInto(NodeId u, NodeId v, Rng& rng,
                                        WalkBuffer* out,
                                        size_t* u_count) const {
  const size_t capacity_before = out->steps_capacity();
  out->Clear();
  SampleFromInto(u, rng, out);
  *u_count = out->num_walks();
  SampleFromInto(v, rng, out);

  // Steady-state contract of the arena: capacity stops changing once the
  // buffer has seen the largest influenced graph, making sampling
  // allocation-free. arena_grows flat-lining while arena_reuses climbs is
  // the observable signature of that.
  if (out->steps_capacity() == capacity_before) {
    arena_reuse_counter_.Increment();
  } else {
    arena_grow_counter_.Increment();
  }
  walks_counter_.Increment(out->num_walks());
  steps_counter_.Increment(out->num_steps());
  for (size_t w = 0; w < out->num_walks(); ++w) {
    walk_len_hist_.Observe(static_cast<double>(out->walk(w).size()));
  }
}

}  // namespace supa
