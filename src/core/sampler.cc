#include "core/sampler.h"

namespace supa {

InfluencedGraphSampler::InfluencedGraphSampler(
    const DynamicGraph& graph, std::vector<MetapathSchema> metapaths,
    int num_walks, int walk_len)
    : walker_(graph),
      graph_(&graph),
      metapaths_(std::move(metapaths)),
      num_walks_(num_walks),
      walk_len_(walk_len) {
  by_head_type_.resize(graph.schema().num_node_types());
  for (size_t i = 0; i < metapaths_.size(); ++i) {
    by_head_type_[metapaths_[i].head()].push_back(i);
  }
}

void InfluencedGraphSampler::SampleFrom(NodeId start, Rng& rng,
                                        std::vector<Walk>* out) const {
  const auto& candidates = by_head_type_[graph_->NodeType(start)];
  if (candidates.empty()) return;
  for (int w = 0; w < num_walks_; ++w) {
    const size_t mp = candidates[rng.Index(candidates.size())];
    Walk walk = walker_.SampleMetapathWalk(start, metapaths_[mp],
                                           static_cast<size_t>(walk_len_),
                                           rng);
    if (!walk.steps.empty()) out->push_back(std::move(walk));
  }
}

InfluencedGraph InfluencedGraphSampler::Sample(NodeId u, NodeId v,
                                               Rng& rng) const {
  InfluencedGraph g;
  SampleFrom(u, rng, &g.from_u);
  SampleFrom(v, rng, &g.from_v);
  return g;
}

void InfluencedGraphSampler::SampleFromInto(NodeId start, Rng& rng,
                                            WalkBuffer* out) const {
  const auto& candidates = by_head_type_[graph_->NodeType(start)];
  if (candidates.empty()) return;
  for (int w = 0; w < num_walks_; ++w) {
    const size_t mp = candidates[rng.Index(candidates.size())];
    walker_.SampleMetapathWalkInto(start, metapaths_[mp],
                                   static_cast<size_t>(walk_len_), rng, out);
  }
}

void InfluencedGraphSampler::SampleInto(NodeId u, NodeId v, Rng& rng,
                                        WalkBuffer* out,
                                        size_t* u_count) const {
  out->Clear();
  SampleFromInto(u, rng, out);
  *u_count = out->num_walks();
  SampleFromInto(v, rng, out);
}

}  // namespace supa
