// Stable node-id → shard placement.
//
// Placement must be a pure function of the node id (not arrival order, not
// degree) so that two stores built over the same node set agree on where
// every row lives — the property that makes checkpoints, delta snapshots,
// and future multi-node layouts portable across shard counts. We hash with
// the same SplitMix64 mix the deterministic-parallelism layer uses, under
// a fixed seed that is part of the on-disk compatibility story.

#ifndef SUPA_STORE_SHARD_MAP_H_
#define SUPA_STORE_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace supa::store {

/// Maps each node id to (shard, local id). Local ids are dense per shard
/// and assigned in ascending node-id order, so with a single shard the
/// map is the identity — the seed layout falls out as the S=1 special
/// case. Immutable after construction; shared by the live store and every
/// snapshot it publishes.
class NodeShardMap {
 public:
  NodeShardMap(size_t num_nodes, size_t num_shards);

  size_t num_nodes() const { return shard_of_.size(); }
  size_t num_shards() const { return shard_sizes_.size(); }

  /// The shard owning node `v`.
  uint32_t shard_of(NodeId v) const { return shard_of_[v]; }

  /// `v`'s dense index within its shard.
  uint32_t local_of(NodeId v) const { return local_of_[v]; }

  /// Number of nodes placed on shard `s`.
  size_t shard_size(size_t s) const { return shard_sizes_[s]; }

  /// The node ids on shard `s`, ascending.
  const std::vector<NodeId>& shard_nodes(size_t s) const {
    return shard_nodes_[s];
  }

 private:
  std::vector<uint32_t> shard_of_;
  std::vector<uint32_t> local_of_;
  std::vector<size_t> shard_sizes_;
  std::vector<std::vector<NodeId>> shard_nodes_;
};

}  // namespace supa::store

#endif  // SUPA_STORE_SHARD_MAP_H_
