// Epoch-based immutable read view over the sharded store.
//
// A StoreSnapshot is a consistent point-in-time copy of every shard's
// adjacency, last-active timestamps, and embedding rows. Snapshots are
// published copy-on-write at shard granularity: shards untouched since the
// previous publish are shared (by shared_ptr) with it, so a quiescent
// store publishes for free and an active one pays only for its dirty
// shards. Readers (scrapes, evaluation, serving) hold a
// shared_ptr<const StoreSnapshot> and never contend with ingest;
// reclamation is reference counting — when the last reader of an old
// epoch drops its pointer, the shards only that epoch referenced are
// freed.

#ifndef SUPA_STORE_SNAPSHOT_H_
#define SUPA_STORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/types.h"
#include "store/embedding_bank.h"
#include "store/shard_map.h"

namespace supa::store {

/// One shard's frozen state, indexed by local id. Immutable once
/// published; shared across consecutive StoreSnapshots while the shard
/// stays clean.
struct ShardSnapshot {
  uint64_t version = 0;
  std::vector<std::vector<Neighbor>> adj;
  std::vector<Timestamp> last_active;
  /// Copy of the bank region [shard_begin, shard_end); empty when the
  /// store has no embeddings attached.
  std::vector<float> emb;
};

/// The cross-shard consistent view. Mirrors the live read API of
/// GraphStore / EmbeddingBank, but every accessor resolves into frozen
/// per-shard copies. Thread-safe by immutability.
class StoreSnapshot {
 public:
  // -- Graph reads --
  std::span<const Neighbor> AllNeighbors(NodeId v) const {
    return shards_[map_->shard_of(v)]->adj[map_->local_of(v)];
  }

  /// Most recent neighbors honoring the neighbor cap η captured at
  /// publish time (0 = unlimited). Unlike the live accessor this does not
  /// bump the cap-hit counter: snapshot reads are observational and must
  /// not perturb training telemetry.
  std::span<const Neighbor> Neighbors(NodeId v) const {
    std::span<const Neighbor> list = AllNeighbors(v);
    if (neighbor_cap_ == 0 || list.size() <= neighbor_cap_) return list;
    return list.subspan(list.size() - neighbor_cap_, neighbor_cap_);
  }

  size_t Degree(NodeId v) const { return AllNeighbors(v).size(); }
  Timestamp LastActive(NodeId v) const {
    return shards_[map_->shard_of(v)]->last_active[map_->local_of(v)];
  }
  NodeTypeId NodeType(NodeId v) const { return (*node_types_)[v]; }

  // -- Embedding reads (valid only when has_embeddings()) --
  const float* LongMem(NodeId v) const {
    const uint32_t s = map_->shard_of(v);
    return shards_[s]->emb.data() +
           (layout_->LongMemOffset(v) - layout_->shard_begin(s));
  }
  const float* ShortMem(NodeId v) const {
    const uint32_t s = map_->shard_of(v);
    return shards_[s]->emb.data() +
           (layout_->ShortMemOffset(v) - layout_->shard_begin(s));
  }
  const float* Context(NodeId v, EdgeTypeId r) const {
    const uint32_t s = map_->shard_of(v);
    return shards_[s]->emb.data() +
           (layout_->ContextOffset(v, r) - layout_->shard_begin(s));
  }
  const float* Alpha(NodeTypeId o) const { return alpha_->data() + o; }

  bool has_embeddings() const { return layout_ != nullptr; }
  int dim() const { return layout_->dim(); }
  size_t num_relations() const { return layout_->num_relations(); }
  size_t num_node_types() const { return layout_->num_node_types(); }

  // -- Metadata frozen at publish --
  uint64_t epoch() const { return epoch_; }
  size_t num_nodes() const { return map_->num_nodes(); }
  size_t num_shards() const { return map_->num_shards(); }
  size_t num_edges() const { return num_edges_; }
  Timestamp latest_time() const { return latest_time_; }
  size_t neighbor_cap() const { return neighbor_cap_; }
  const NodeShardMap& shard_map() const { return *map_; }
  const ShardSnapshot& shard(size_t s) const { return *shards_[s]; }

 private:
  friend class GraphStore;
  StoreSnapshot() = default;

  std::shared_ptr<const NodeShardMap> map_;
  std::shared_ptr<const EmbeddingLayout> layout_;  // null without a bank
  std::shared_ptr<const std::vector<NodeTypeId>> node_types_;
  std::vector<std::shared_ptr<const ShardSnapshot>> shards_;
  std::shared_ptr<const std::vector<float>> alpha_;
  uint64_t epoch_ = 0;
  size_t num_edges_ = 0;
  Timestamp latest_time_ = kNeverActive;
  size_t neighbor_cap_ = 0;
};

}  // namespace supa::store

#endif  // SUPA_STORE_SNAPSHOT_H_
