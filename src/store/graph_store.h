// The sharded storage engine: per-shard adjacency + embedding banks
// behind write leases and epoch-snapshot reads.
//
// Ownership story (DESIGN.md §11):
//   - Nodes are placed on shards by NodeShardMap (stable hash of id).
//   - Each shard owns its nodes' adjacency lists, last-active timestamps,
//     and — when a bank is attached — their h^L/h^S/c^r embedding rows.
//   - Mutations happen under *write leases* (per-shard mutexes, always
//     acquired in ascending shard order). AddEdge / RemoveEdge lease their
//     two endpoint shards internally; a trainer that scatters embedding
//     writes across the whole parameter buffer takes LeaseAll() around
//     each training step.
//   - Concurrent readers never touch the live structures: they call
//     AcquireSnapshot(), which publishes a copy-on-write epoch (dirty
//     shards copied under their mutex, clean shards shared with the
//     previous epoch) and hand back an immutable StoreSnapshot.
//   - Live (unlocked) read accessors remain for the single-writer hot
//     path: the thread holding the write story may read its own state
//     freely. Any *other* thread must read through a snapshot.
//
// Determinism contract: the shard count decides only memory placement.
// Hash placement, lease scope, and snapshot publication never reorder
// computation or consume randomness, so results are bit-identical at any
// SUPA_SHARDS value.

#ifndef SUPA_STORE_GRAPH_STORE_H_
#define SUPA_STORE_GRAPH_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "graph/types.h"
#include "obs/metrics.h"
#include "obs/statusz.h"
#include "store/embedding_bank.h"
#include "store/shard_map.h"
#include "store/snapshot.h"
#include "store/store_options.h"
#include "util/rng.h"
#include "util/status.h"

namespace supa::store {

class GraphStore;

/// RAII exclusive write access to a set of shards. Locks are taken in
/// ascending shard order (deadlock-free against other leases and against
/// the snapshot publisher, which holds at most one shard at a time) and
/// each covered shard's version is bumped on release so the next publish
/// knows to re-copy it.
class ShardWriteLease {
 public:
  ShardWriteLease() = default;
  ShardWriteLease(ShardWriteLease&& other) noexcept
      : store_(other.store_), mask_(other.mask_) {
    other.store_ = nullptr;
    other.mask_ = 0;
  }
  ShardWriteLease& operator=(ShardWriteLease&& other) noexcept {
    if (this != &other) {
      Release();
      store_ = other.store_;
      mask_ = other.mask_;
      other.store_ = nullptr;
      other.mask_ = 0;
    }
    return *this;
  }
  ShardWriteLease(const ShardWriteLease&) = delete;
  ShardWriteLease& operator=(const ShardWriteLease&) = delete;
  ~ShardWriteLease() { Release(); }

  /// Unlocks early (idempotent).
  void Release();

 private:
  friend class GraphStore;
  ShardWriteLease(GraphStore* store, uint64_t mask);

  /// Adopts already-held locks (TryLeaseMask's success path).
  struct AdoptTag {};
  ShardWriteLease(GraphStore* store, uint64_t mask, AdoptTag)
      : store_(store), mask_(mask) {}

  GraphStore* store_ = nullptr;
  uint64_t mask_ = 0;
};

/// The engine. Owns the shard map, the per-shard adjacency, and (once
/// AttachEmbeddings is called) the embedding bank.
class GraphStore {
 public:
  /// Creates a store over `node_types.size()` nodes. `num_edge_types` is
  /// the |R| bound AddEdge validates against.
  GraphStore(size_t num_edge_types, std::vector<NodeTypeId> node_types,
             StoreOptions options = {});
  ~GraphStore();

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Deep copy (fresh mutexes/epochs, same placement and contents). Used
  /// by the DynamicGraph facade's value semantics.
  std::unique_ptr<GraphStore> Clone() const;

  /// Allocates the embedding bank over this store's shard map. Rows are
  /// initialized in logical order from `rng` (see EmbeddingBank).
  void AttachEmbeddings(size_t num_relations, size_t num_node_types, int dim,
                        double init_scale, Rng& rng);
  bool has_embeddings() const { return bank_ != nullptr; }
  EmbeddingBank& embeddings() { return *bank_; }
  const EmbeddingBank& embeddings() const { return *bank_; }
  const std::shared_ptr<EmbeddingBank>& shared_embeddings() const {
    return bank_;
  }

  // -- Mutations (lease internally) --

  /// Appends a temporal edge to both endpoint shards. Timestamps must be
  /// non-decreasing across calls; node ids must be in range and distinct.
  Status AddEdge(NodeId u, NodeId v, EdgeTypeId r, Timestamp t);

  /// Removes the most recent (u, v, r) edge from both adjacency lists.
  /// O(degree). Last-active timestamps are left untouched. Returns
  /// NotFound when no such edge exists.
  Status RemoveEdge(NodeId u, NodeId v, EdgeTypeId r);

  /// Overrides a node's last-active timestamp. Unlike the edge ops this
  /// does NOT lease: it is called from the trainer's hot loop, which
  /// already holds LeaseAll() (or is the sole thread touching the store).
  void SetLastActive(NodeId v, Timestamp t) {
    Shard& sh = *shards_[map_->shard_of(v)];
    sh.last_active[map_->local_of(v)] = t;
  }

  // -- Write leases --
  ShardWriteLease LeaseAll();
  ShardWriteLease LeaseNodes(NodeId u, NodeId v);

  /// Blocking lease over an explicit shard set (bit s covers shard s).
  /// Ascending acquisition order; bits beyond num_shards() are ignored.
  /// This is the ingest dispatcher's mask-wait: it parks here until every
  /// shard a scheduled group touches is free.
  ShardWriteLease LeaseMask(uint64_t mask);

  /// All-or-nothing non-blocking variant: acquires every shard in `mask`
  /// via try_lock (ascending) or none. On success stores the lease in
  /// `*out` and returns true; on contention backs out the partial set
  /// WITHOUT bumping versions (nothing was written under it) and returns
  /// false.
  bool TryLeaseMask(uint64_t mask, ShardWriteLease* out);

  /// Mask with bit `shard_of(v)` set — footprint building block for the
  /// ingest scheduler.
  uint64_t ShardMaskOf(NodeId v) const {
    return uint64_t{1} << map_->shard_of(v);
  }
  /// Mask covering every shard of this store.
  uint64_t all_shards_mask() const;

  // -- Live reads (single-writer contract; see file comment) --
  std::span<const Neighbor> AllNeighbors(NodeId v) const {
    return shards_[map_->shard_of(v)]->adj[map_->local_of(v)];
  }
  std::span<const Neighbor> Neighbors(NodeId v) const {
    std::span<const Neighbor> list = AllNeighbors(v);
    const size_t cap = neighbor_cap_.load(std::memory_order_relaxed);
    if (cap == 0 || list.size() <= cap) return list;
    // Counts lookups that actually lost history to η — the precondition
    // for the Neighborhood Disturbance phenomenon (§IV-F).
    cap_hit_counter_.Increment();
    return list.subspan(list.size() - cap, cap);
  }
  size_t Degree(NodeId v) const { return AllNeighbors(v).size(); }
  Timestamp LastActive(NodeId v) const {
    return shards_[map_->shard_of(v)]->last_active[map_->local_of(v)];
  }
  NodeTypeId NodeType(NodeId v) const { return (*node_types_)[v]; }
  std::vector<NodeId> NodesOfType(NodeTypeId t) const;

  void set_neighbor_cap(size_t eta) {
    neighbor_cap_.store(eta, std::memory_order_relaxed);
  }
  size_t neighbor_cap() const {
    return neighbor_cap_.load(std::memory_order_relaxed);
  }

  size_t num_nodes() const { return node_types_->size(); }
  size_t num_edges() const {
    return num_edges_.load(std::memory_order_relaxed);
  }
  Timestamp latest_time() const {
    return latest_time_.load(std::memory_order_relaxed);
  }
  size_t num_edge_types() const { return num_edge_types_; }
  size_t num_shards() const { return map_->num_shards(); }
  const NodeShardMap& shard_map() const { return *map_; }
  const std::shared_ptr<const std::vector<NodeTypeId>>& shared_node_types()
      const {
    return node_types_;
  }

  // -- Epoch snapshots --

  /// Publishes (or reuses) the current epoch and returns its read view.
  /// Thread-safe; concurrent with ingest. Cost is proportional to the
  /// state of *dirty* shards only.
  std::shared_ptr<const StoreSnapshot> AcquireSnapshot();

  /// Epoch of the most recent publish (0 = never published).
  uint64_t epoch() const {
    return epoch_counter_.load(std::memory_order_relaxed);
  }

  // -- Observability --

  /// Adjacency entries currently held by shard `s` (each edge contributes
  /// one entry to each endpoint's shard).
  size_t ShardEdgeSlots(size_t s) const {
    return shards_[s]->edge_slots.load(std::memory_order_relaxed);
  }
  /// Nodes placed on shard `s` (static once constructed).
  size_t ShardNodes(size_t s) const { return map_->shard_size(s); }
  /// Estimated resident bytes of shard `s`: adjacency entries +
  /// last-active array + owned embedding rows.
  size_t ShardBytesEstimate(size_t s) const;

  /// Re-exports the store.shard_* gauges from the current counters.
  /// Cheap (relaxed atomic reads + gauge stores); the trainer calls this
  /// at batch boundaries so Prometheus scrapes stay fresh without
  /// forcing a snapshot publish.
  void RefreshShardMetrics();

  /// Write-lease version of shard `s` (bumped on every lease release that
  /// covered it). The delta writer diffs these against the versions it saw
  /// at the previous checkpoint link to enumerate shards that could have
  /// changed — clean shards are skipped without scanning their rows.
  uint64_t ShardVersion(size_t s) const {
    return shards_[s]->version.load(std::memory_order_acquire);
  }
  /// All shard versions, index-aligned with shard ids.
  std::vector<uint64_t> ShardVersions() const {
    std::vector<uint64_t> out(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) out[s] = ShardVersion(s);
    return out;
  }

 private:
  friend class ShardWriteLease;

  struct Shard {
    std::vector<std::vector<Neighbor>> adj;  // by local id
    std::vector<Timestamp> last_active;      // by local id
    mutable std::mutex mu;
    std::atomic<uint64_t> version{0};
    std::atomic<size_t> edge_slots{0};
  };

  void AppendHalfEdge(NodeId from, const Neighbor& n);
  bool EraseLatestHalfEdge(NodeId from, NodeId to, EdgeTypeId r);

  /// Records a blocked lease acquisition on shard `s`
  /// (store.lease_contention.<s>; metrics-publishing stores only).
  void CountLeaseContention(size_t s);

  size_t num_edge_types_;
  std::shared_ptr<const std::vector<NodeTypeId>> node_types_;
  std::shared_ptr<const NodeShardMap> map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<EmbeddingBank> bank_;
  StoreOptions options_;

  std::atomic<size_t> num_edges_{0};
  std::atomic<Timestamp> latest_time_{kNeverActive};
  std::atomic<size_t> neighbor_cap_{0};
  obs::Counter cap_hit_counter_;

  // Publish state: previous epoch's per-shard views and the versions they
  // captured, so clean shards are reused instead of re-copied.
  mutable std::mutex publish_mu_;
  std::vector<std::shared_ptr<const ShardSnapshot>> published_;
  std::vector<uint64_t> published_version_;
  std::shared_ptr<const StoreSnapshot> last_snapshot_;
  std::atomic<uint64_t> epoch_counter_{0};  // written under publish_mu_

  std::vector<obs::Gauge> shard_edges_gauges_;
  std::vector<obs::Gauge> shard_nodes_gauges_;
  std::vector<obs::Gauge> shard_bytes_gauges_;
  std::vector<obs::Counter> lease_contention_counters_;
  std::optional<obs::StatusScope> status_scope_;
};

}  // namespace supa::store

#endif  // SUPA_STORE_GRAPH_STORE_H_
