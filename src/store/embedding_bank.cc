#include "store/embedding_bank.h"

#include <algorithm>
#include <cstring>

namespace supa::store {

EmbeddingLayout::EmbeddingLayout(std::shared_ptr<const NodeShardMap> map,
                                 size_t num_relations, size_t num_node_types,
                                 int dim)
    : map_(std::move(map)),
      map_raw_(map_.get()),
      num_relations_(num_relations),
      num_node_types_(num_node_types),
      dim_(static_cast<size_t>(dim)) {
  const size_t num_shards = map_raw_->num_shards();
  emb_base_.resize(num_shards + 1);
  short_base_.resize(num_shards);
  ctx_base_.resize(num_shards);
  size_t base = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t n_s = map_raw_->shard_size(s);
    emb_base_[s] = base;
    short_base_[s] = base + n_s * dim_;
    ctx_base_[s] = base + 2 * n_s * dim_;
    base += (2 + num_relations_) * n_s * dim_;
  }
  emb_base_[num_shards] = base;
  alpha_off_ = base;
  size_ = base + num_node_types_;
}

size_t EmbeddingLayout::PhysicalToLogical(size_t offset) const {
  // The α tail sits at the same trailing offsets in both layouts.
  if (offset >= alpha_off_) return offset;
  // Shard owning the offset: last emb_base_ entry <= offset.
  const auto it =
      std::upper_bound(emb_base_.begin(), emb_base_.end(), offset);
  const size_t s = static_cast<size_t>(it - emb_base_.begin()) - 1;
  const std::vector<NodeId>& nodes = map_raw_->shard_nodes(s);
  if (offset < short_base_[s]) {
    const size_t local = offset - emb_base_[s];
    return LogicalLongMemOffset(nodes[local / dim_]) + local % dim_;
  }
  if (offset < ctx_base_[s]) {
    const size_t local = offset - short_base_[s];
    return LogicalShortMemOffset(nodes[local / dim_]) + local % dim_;
  }
  const size_t local = offset - ctx_base_[s];
  const size_t row = local / dim_;
  return LogicalContextOffset(nodes[row / num_relations_],
                              static_cast<EdgeTypeId>(row % num_relations_)) +
         local % dim_;
}

EmbeddingBank::EmbeddingBank(std::shared_ptr<const EmbeddingLayout> layout,
                             double init_scale, Rng& rng)
    : layout_(std::move(layout)), L_(layout_.get()) {
  params_.resize(L_->size());
  const size_t d = static_cast<size_t>(L_->dim());
  const size_t n = L_->num_nodes();
  const size_t r_count = L_->num_relations();
  auto fill = [&](float* row) {
    for (size_t k = 0; k < d; ++k) {
      row[k] = static_cast<float>(rng.Gaussian(0.0, init_scale));
    }
  };
  for (NodeId v = 0; v < n; ++v) fill(LongMem(v));
  for (NodeId v = 0; v < n; ++v) fill(ShortMem(v));
  for (NodeId v = 0; v < n; ++v) {
    for (EdgeTypeId r = 0; r < r_count; ++r) fill(Context(v, r));
  }
  // α_o = 0 => drift coefficient σ(α) starts at 0.5.
  for (size_t i = L_->alpha_begin(); i < params_.size(); ++i) {
    params_[i] = 0.0f;
  }
}

namespace {

/// Copies every row between physical and logical positions; `to_logical`
/// picks the direction. The α tail occupies the same trailing offsets in
/// both layouts.
void Permute(const EmbeddingLayout& L, const float* src, float* dst,
             bool to_logical) {
  const size_t d = static_cast<size_t>(L.dim());
  const size_t row_bytes = d * sizeof(float);
  auto move_row = [&](size_t physical, size_t logical) {
    if (to_logical) {
      std::memcpy(dst + logical, src + physical, row_bytes);
    } else {
      std::memcpy(dst + physical, src + logical, row_bytes);
    }
  };
  for (NodeId v = 0; v < L.num_nodes(); ++v) {
    move_row(L.LongMemOffset(v), L.LogicalLongMemOffset(v));
    move_row(L.ShortMemOffset(v), L.LogicalShortMemOffset(v));
    for (EdgeTypeId r = 0; r < L.num_relations(); ++r) {
      move_row(L.ContextOffset(v, r), L.LogicalContextOffset(v, r));
    }
  }
  std::memcpy(dst + L.alpha_begin(), src + L.alpha_begin(),
              L.num_node_types() * sizeof(float));
}

}  // namespace

void EmbeddingBank::GatherLogical(const float* src, float* dst) const {
  Permute(*L_, src, dst, /*to_logical=*/true);
}

void EmbeddingBank::ScatterLogical(const float* src, float* dst) const {
  Permute(*L_, src, dst, /*to_logical=*/false);
}

}  // namespace supa::store
