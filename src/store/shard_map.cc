#include "store/shard_map.h"

#include "util/rng.h"

namespace supa::store {
namespace {

/// Fixed placement seed. Changing it reshuffles every node's home shard,
/// which is a layout-compatibility break — treat like a file-format magic.
constexpr uint64_t kPlacementSeed = 0x53555041'53544f52ull;  // "SUPASTOR"

}  // namespace

NodeShardMap::NodeShardMap(size_t num_nodes, size_t num_shards) {
  shard_of_.resize(num_nodes);
  local_of_.resize(num_nodes);
  shard_sizes_.assign(num_shards, 0);
  shard_nodes_.resize(num_shards);
  for (NodeId v = 0; v < num_nodes; ++v) {
    const uint32_t s =
        num_shards == 1
            ? 0
            : static_cast<uint32_t>(SplitMix64At(kPlacementSeed, v) %
                                    num_shards);
    shard_of_[v] = s;
    local_of_[v] = static_cast<uint32_t>(shard_sizes_[s]++);
    shard_nodes_[s].push_back(v);
  }
}

}  // namespace supa::store
