#include "store/graph_store.h"

#include <string>
#include <utility>

namespace supa::store {

namespace {

uint64_t ShardBit(uint32_t s) { return uint64_t{1} << s; }

uint64_t AllShardsMask(size_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

}  // namespace

ShardWriteLease::ShardWriteLease(GraphStore* store, uint64_t mask)
    : store_(store), mask_(mask) {
  // Ascending acquisition order keeps concurrent leases deadlock-free;
  // the snapshot publisher holds at most one shard mutex at a time, so it
  // can never participate in a cycle either.
  for (size_t s = 0; s < store_->shards_.size(); ++s) {
    if (mask_ & ShardBit(static_cast<uint32_t>(s))) {
      std::mutex& mu = store_->shards_[s]->mu;
      // try_lock first so the uncontended hot path stays one CAS; a miss
      // feeds the per-shard contention counter before parking.
      if (!mu.try_lock()) {
        store_->CountLeaseContention(s);
        mu.lock();
      }
    }
  }
}

void ShardWriteLease::Release() {
  if (store_ == nullptr) return;
  for (size_t s = 0; s < store_->shards_.size(); ++s) {
    if (mask_ & ShardBit(static_cast<uint32_t>(s))) {
      // Bump before unlock: the next publisher that locks this shard is
      // guaranteed to observe a version ≠ the one it last captured.
      store_->shards_[s]->version.fetch_add(1, std::memory_order_release);
      store_->shards_[s]->mu.unlock();
    }
  }
  store_ = nullptr;
  mask_ = 0;
}

GraphStore::GraphStore(size_t num_edge_types,
                       std::vector<NodeTypeId> node_types,
                       StoreOptions options)
    : num_edge_types_(num_edge_types),
      node_types_(std::make_shared<const std::vector<NodeTypeId>>(
          std::move(node_types))),
      options_(options),
      cap_hit_counter_(obs::MetricsRegistry::Global().GetCounter(
          "graph.neighbor_cap_hits")) {
  const size_t num_shards = ResolveNumShards(options_.num_shards);
  options_.num_shards = num_shards;
  map_ = std::make_shared<const NodeShardMap>(node_types_->size(),
                                              num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->adj.resize(map_->shard_size(s));
    shard->last_active.assign(map_->shard_size(s), kNeverActive);
    shards_.push_back(std::move(shard));
  }
  published_.resize(num_shards);
  published_version_.assign(num_shards, 0);
  if (options_.publish_metrics) {
    auto& registry = obs::MetricsRegistry::Global();
    for (size_t s = 0; s < num_shards; ++s) {
      const std::string suffix = "." + std::to_string(s);
      shard_edges_gauges_.push_back(
          registry.GetGauge("store.shard_edges" + suffix));
      shard_nodes_gauges_.push_back(
          registry.GetGauge("store.shard_nodes" + suffix));
      shard_bytes_gauges_.push_back(
          registry.GetGauge("store.shard_bytes" + suffix));
      lease_contention_counters_.push_back(
          registry.GetCounter("store.lease_contention" + suffix));
    }
    RefreshShardMetrics();
    // The provider reads only relaxed atomics and construction-time
    // immutables, per the StatusRegistry contract (no app locks).
    status_scope_.emplace("store/shards", [this] {
      std::vector<obs::StatusItem> items;
      items.push_back({"shards", std::to_string(this->num_shards())});
      items.push_back({"epoch", std::to_string(this->epoch())});
      items.push_back({"edges", std::to_string(this->num_edges())});
      for (size_t s = 0; s < this->num_shards(); ++s) {
        items.push_back(
            {"shard." + std::to_string(s),
             "nodes=" + std::to_string(this->ShardNodes(s)) +
                 " edge_slots=" + std::to_string(this->ShardEdgeSlots(s)) +
                 " bytes=" + std::to_string(this->ShardBytesEstimate(s))});
      }
      return items;
    });
  }
}

GraphStore::~GraphStore() = default;

std::unique_ptr<GraphStore> GraphStore::Clone() const {
  StoreOptions options = options_;
  // Clones back value-semantic copies (eval protocols churn through
  // them); re-exporting gauges from every copy would thrash the registry.
  options.publish_metrics = false;
  auto clone =
      std::make_unique<GraphStore>(num_edge_types_, *node_types_, options);
  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& src = *shards_[s];
    Shard& dst = *clone->shards_[s];
    std::lock_guard<std::mutex> lock(src.mu);
    dst.adj = src.adj;
    dst.last_active = src.last_active;
    dst.edge_slots.store(src.edge_slots.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
  if (bank_ != nullptr) {
    clone->bank_ = std::make_shared<EmbeddingBank>(*bank_);
  }
  clone->num_edges_.store(num_edges(), std::memory_order_relaxed);
  clone->latest_time_.store(latest_time(), std::memory_order_relaxed);
  clone->neighbor_cap_.store(neighbor_cap(), std::memory_order_relaxed);
  return clone;
}

void GraphStore::AttachEmbeddings(size_t num_relations, size_t num_node_types,
                                  int dim, double init_scale, Rng& rng) {
  auto layout = std::make_shared<const EmbeddingLayout>(
      map_, num_relations, num_node_types, dim);
  bank_ = std::make_shared<EmbeddingBank>(std::move(layout), init_scale, rng);
}

void GraphStore::AppendHalfEdge(NodeId from, const Neighbor& n) {
  Shard& sh = *shards_[map_->shard_of(from)];
  sh.adj[map_->local_of(from)].push_back(n);
  sh.edge_slots.fetch_add(1, std::memory_order_relaxed);
}

bool GraphStore::EraseLatestHalfEdge(NodeId from, NodeId to, EdgeTypeId r) {
  Shard& sh = *shards_[map_->shard_of(from)];
  std::vector<Neighbor>& list = sh.adj[map_->local_of(from)];
  for (size_t i = list.size(); i-- > 0;) {
    if (list[i].node == to && list[i].edge_type == r) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(i));
      sh.edge_slots.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

Status GraphStore::AddEdge(NodeId u, NodeId v, EdgeTypeId r, Timestamp t) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::OutOfRange("edge endpoint out of range: " +
                              std::to_string(u) + "," + std::to_string(v));
  }
  if (u == v) {
    return Status::InvalidArgument("self loops are not allowed");
  }
  if (r >= num_edge_types_) {
    return Status::OutOfRange("edge type out of range: " + std::to_string(r));
  }
  if (t < latest_time()) {
    return Status::FailedPrecondition(
        "edges must arrive in non-decreasing time order");
  }
  ShardWriteLease lease = LeaseNodes(u, v);
  AppendHalfEdge(u, Neighbor{v, r, t});
  AppendHalfEdge(v, Neighbor{u, r, t});
  SetLastActive(u, t);
  SetLastActive(v, t);
  // Monotonic max under concurrent ingest (a plain store could move the
  // clock backwards when two writers race).
  Timestamp prev = latest_time_.load(std::memory_order_relaxed);
  while (prev < t &&
         !latest_time_.compare_exchange_weak(prev, t,
                                             std::memory_order_relaxed)) {
  }
  num_edges_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status GraphStore::RemoveEdge(NodeId u, NodeId v, EdgeTypeId r) {
  if (u >= num_nodes() || v >= num_nodes()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  ShardWriteLease lease = LeaseNodes(u, v);
  if (!EraseLatestHalfEdge(u, v, r)) {
    return Status::NotFound("no such edge to remove");
  }
  if (!EraseLatestHalfEdge(v, u, r)) {
    return Status::Internal("asymmetric adjacency state");
  }
  num_edges_.fetch_sub(1, std::memory_order_relaxed);
  return Status::OK();
}

ShardWriteLease GraphStore::LeaseAll() {
  return ShardWriteLease(this, AllShardsMask(shards_.size()));
}

ShardWriteLease GraphStore::LeaseNodes(NodeId u, NodeId v) {
  return ShardWriteLease(this, ShardBit(map_->shard_of(u)) |
                                   ShardBit(map_->shard_of(v)));
}

uint64_t GraphStore::all_shards_mask() const {
  return AllShardsMask(shards_.size());
}

ShardWriteLease GraphStore::LeaseMask(uint64_t mask) {
  return ShardWriteLease(this, mask & AllShardsMask(shards_.size()));
}

bool GraphStore::TryLeaseMask(uint64_t mask, ShardWriteLease* out) {
  mask &= AllShardsMask(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!(mask & ShardBit(static_cast<uint32_t>(s)))) continue;
    if (shards_[s]->mu.try_lock()) continue;
    CountLeaseContention(s);
    // Back out the prefix we did acquire. No version bumps: a lease that
    // was never granted guarded no writes, so snapshots need not re-copy.
    for (size_t p = 0; p < s; ++p) {
      if (mask & ShardBit(static_cast<uint32_t>(p))) shards_[p]->mu.unlock();
    }
    return false;
  }
  *out = ShardWriteLease(this, mask, ShardWriteLease::AdoptTag{});
  return true;
}

void GraphStore::CountLeaseContention(size_t s) {
  if (s < lease_contention_counters_.size()) {
    lease_contention_counters_[s].Increment();
  }
}

std::vector<NodeId> GraphStore::NodesOfType(NodeTypeId t) const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if ((*node_types_)[v] == t) out.push_back(v);
  }
  return out;
}

std::shared_ptr<const StoreSnapshot> GraphStore::AcquireSnapshot() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  bool changed = last_snapshot_ == nullptr;
  std::shared_ptr<const std::vector<float>> alpha =
      last_snapshot_ != nullptr ? last_snapshot_->alpha_ : nullptr;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    if (published_[s] != nullptr &&
        published_version_[s] == sh.version.load(std::memory_order_acquire)) {
      continue;  // Clean since last publish: share the previous copy.
    }
    auto shot = std::make_shared<ShardSnapshot>();
    {
      std::lock_guard<std::mutex> shard_lock(sh.mu);
      shot->version = sh.version.load(std::memory_order_relaxed);
      shot->adj = sh.adj;
      shot->last_active = sh.last_active;
      if (bank_ != nullptr) {
        const EmbeddingLayout& layout = bank_->layout();
        shot->emb.assign(bank_->data() + layout.shard_begin(s),
                         bank_->data() + layout.shard_end(s));
        if (s == 0) {
          // α rides with shard 0: its only writers hold LeaseAll, which
          // covers shard 0's mutex and bumps shard 0's version.
          alpha = std::make_shared<const std::vector<float>>(
              bank_->data() + layout.alpha_begin(),
              bank_->data() + layout.size());
        }
      }
    }
    published_version_[s] = shot->version;
    published_[s] = std::move(shot);
    changed = true;
  }
  if (changed) {
    auto snap = std::shared_ptr<StoreSnapshot>(new StoreSnapshot());
    snap->map_ = map_;
    snap->layout_ = bank_ != nullptr ? bank_->shared_layout() : nullptr;
    snap->node_types_ = node_types_;
    snap->shards_ = published_;
    snap->alpha_ = alpha != nullptr
                       ? std::move(alpha)
                       : std::make_shared<const std::vector<float>>();
    snap->epoch_ =
        epoch_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    snap->num_edges_ = num_edges();
    snap->latest_time_ = latest_time();
    snap->neighbor_cap_ = neighbor_cap();
    last_snapshot_ = std::move(snap);
  }
  RefreshShardMetrics();
  return last_snapshot_;
}

size_t GraphStore::ShardBytesEstimate(size_t s) const {
  size_t bytes = ShardEdgeSlots(s) * sizeof(Neighbor) +
                 map_->shard_size(s) *
                     (sizeof(Timestamp) + sizeof(std::vector<Neighbor>));
  if (bank_ != nullptr) {
    const EmbeddingLayout& layout = bank_->layout();
    bytes += (layout.shard_end(s) - layout.shard_begin(s)) * sizeof(float);
  }
  return bytes;
}

void GraphStore::RefreshShardMetrics() {
  if (!options_.publish_metrics) return;
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_edges_gauges_[s].Set(static_cast<double>(ShardEdgeSlots(s)));
    shard_nodes_gauges_[s].Set(static_cast<double>(ShardNodes(s)));
    shard_bytes_gauges_[s].Set(static_cast<double>(ShardBytesEstimate(s)));
  }
}

}  // namespace supa::store
