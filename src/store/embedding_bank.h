// Shard-colocated parameter storage for SUPA's four embedding banks.
//
// One contiguous float buffer, laid out shard-major so every row a shard
// owns (its nodes' h^L, h^S, and c^r rows) is a single cache-friendly
// region that snapshots can memcpy independently:
//
//   [shard 0: h^L rows | h^S rows | c^r rows][shard 1: ...]...[α tail]
//
// Within a shard, rows are ordered by local id (ascending node id), so
// with one shard the buffer is byte-identical to the historical monolith
// layout [all h^L][all h^S][all c^r][α]. Consumers never see the physical
// arrangement: they address rows through offsets, which stay opaque to the
// sparse optimizer, gradient buffer, dirty-row tracking, and delta
// snapshots. Anything that must be layout-*invariant* across shard counts
// (checkpoints) converts through GatherLogical / ScatterLogical.

#ifndef SUPA_STORE_EMBEDDING_BANK_H_
#define SUPA_STORE_EMBEDDING_BANK_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "store/shard_map.h"
#include "util/rng.h"

namespace supa::store {

/// Immutable offset geometry: where each (node, bank) row lives in the
/// physical buffer, and where it would live in the canonical *logical*
/// layout (the S=1 monolith order used by checkpoints). Shared by the
/// live bank and every published snapshot.
class EmbeddingLayout {
 public:
  EmbeddingLayout(std::shared_ptr<const NodeShardMap> map,
                  size_t num_relations, size_t num_node_types, int dim);

  // -- Physical offsets (floats into the banked buffer) --
  size_t LongMemOffset(NodeId v) const {
    return emb_base_[map_raw_->shard_of(v)] +
           static_cast<size_t>(map_raw_->local_of(v)) * dim_;
  }
  size_t ShortMemOffset(NodeId v) const {
    return short_base_[map_raw_->shard_of(v)] +
           static_cast<size_t>(map_raw_->local_of(v)) * dim_;
  }
  size_t ContextOffset(NodeId v, EdgeTypeId r) const {
    return ctx_base_[map_raw_->shard_of(v)] +
           (static_cast<size_t>(map_raw_->local_of(v)) * num_relations_ + r) *
               dim_;
  }
  size_t AlphaOffset(NodeTypeId o) const { return alpha_off_ + o; }

  // -- Logical offsets (the canonical S=1 order; checkpoint format) --
  size_t LogicalLongMemOffset(NodeId v) const { return v * dim_; }
  size_t LogicalShortMemOffset(NodeId v) const {
    return (map_raw_->num_nodes() + v) * dim_;
  }
  size_t LogicalContextOffset(NodeId v, EdgeTypeId r) const {
    return 2 * map_raw_->num_nodes() * dim_ +
           (static_cast<size_t>(v) * num_relations_ + r) * dim_;
  }

  /// Inverts the physical layout: the logical offset of the float that
  /// lives at physical `offset`. Rows occupy contiguous same-length spans
  /// in both layouts, so converting a dirty row's starting offset relocates
  /// the whole row — this is how delta checkpoints serialize dirty rows in
  /// shard-count-invariant coordinates. O(log S) shard search plus O(log
  /// n_s) reverse node lookup.
  size_t PhysicalToLogical(size_t offset) const;

  // -- Per-shard regions (for snapshot copies and byte accounting). The α
  //    tail belongs to no shard; it rides with shard 0's write ordering. --
  size_t shard_begin(size_t s) const { return emb_base_[s]; }
  size_t shard_end(size_t s) const { return emb_base_[s + 1]; }
  size_t alpha_begin() const { return alpha_off_; }

  size_t size() const { return size_; }
  int dim() const { return static_cast<int>(dim_); }
  size_t num_nodes() const { return map_raw_->num_nodes(); }
  size_t num_relations() const { return num_relations_; }
  size_t num_node_types() const { return num_node_types_; }
  size_t num_shards() const { return map_raw_->num_shards(); }
  const NodeShardMap& map() const { return *map_raw_; }
  const std::shared_ptr<const NodeShardMap>& shared_map() const {
    return map_;
  }

 private:
  std::shared_ptr<const NodeShardMap> map_;
  const NodeShardMap* map_raw_;
  size_t num_relations_;
  size_t num_node_types_;
  size_t dim_;
  std::vector<size_t> emb_base_;    // S+1 entries; [s], [s+1]) is shard s.
  std::vector<size_t> short_base_;  // h^S region start per shard.
  std::vector<size_t> ctx_base_;    // c^r region start per shard.
  size_t alpha_off_;
  size_t size_;
};

/// The live parameter buffer. Copyable (deep copy sharing the immutable
/// layout), which is what lets the EmbeddingStore facade keep its value
/// semantics.
class EmbeddingBank {
 public:
  /// Allocates and randomly initializes all parameters with
  /// N(0, init_scale²); α starts at 0. Rows are filled in *logical* order
  /// (all h^L by node id, all h^S, then c^r node-major) so the RNG stream
  /// is consumed identically at every shard count — bit-for-bit the same
  /// initial model as the monolith.
  EmbeddingBank(std::shared_ptr<const EmbeddingLayout> layout,
                double init_scale, Rng& rng);

  float* LongMem(NodeId v) { return data() + L_->LongMemOffset(v); }
  const float* LongMem(NodeId v) const {
    return data() + L_->LongMemOffset(v);
  }
  float* ShortMem(NodeId v) { return data() + L_->ShortMemOffset(v); }
  const float* ShortMem(NodeId v) const {
    return data() + L_->ShortMemOffset(v);
  }
  float* Context(NodeId v, EdgeTypeId r) {
    return data() + L_->ContextOffset(v, r);
  }
  const float* Context(NodeId v, EdgeTypeId r) const {
    return data() + L_->ContextOffset(v, r);
  }
  float* Alpha(NodeTypeId o) { return data() + L_->AlphaOffset(o); }
  const float* Alpha(NodeTypeId o) const {
    return data() + L_->AlphaOffset(o);
  }

  float* data() { return params_.data(); }
  const float* data() const { return params_.data(); }
  size_t size() const { return params_.size(); }

  std::vector<float> Snapshot() const { return params_; }
  void Restore(const std::vector<float>& snapshot) { params_ = snapshot; }

  /// Permutes a buffer in this bank's physical layout into the canonical
  /// logical layout (and back). `src` and `dst` are `size()` floats and
  /// must not alias. Works on any parallel-indexed buffer — parameters or
  /// per-offset optimizer moments — which is how checkpoints stay
  /// byte-identical across shard counts.
  void GatherLogical(const float* src, float* dst) const;
  void ScatterLogical(const float* src, float* dst) const;

  const EmbeddingLayout& layout() const { return *L_; }
  const std::shared_ptr<const EmbeddingLayout>& shared_layout() const {
    return layout_;
  }

 private:
  std::shared_ptr<const EmbeddingLayout> layout_;
  const EmbeddingLayout* L_;
  std::vector<float> params_;
};

}  // namespace supa::store

#endif  // SUPA_STORE_EMBEDDING_BANK_H_
