// Construction-time knobs for the sharded storage engine.
//
// The shard count is the one user-visible knob: it controls how nodes are
// partitioned across independent adjacency + embedding banks. It is
// resolved once, at store construction, from (in priority order) the
// explicit request, the SUPA_SHARDS environment variable, and a default of
// a single shard. Determinism contract: the resolved count changes only
// *where* state lives, never *what* is computed — training and eval are
// bit-identical at any shard count (see DESIGN.md §11).

#ifndef SUPA_STORE_STORE_OPTIONS_H_
#define SUPA_STORE_STORE_OPTIONS_H_

#include <cstddef>
#include <cstdlib>

namespace supa::store {

/// Upper bound on shards: write leases track their held shards in a
/// 64-bit mask, and a single host has no use for more partitions than
/// that anyway.
inline constexpr size_t kMaxShards = 64;

struct StoreOptions {
  /// Requested shard count; 0 defers to SUPA_SHARDS (then to 1).
  size_t num_shards = 0;
  /// Export store.shard_* gauges and the /statusz shard-balance section.
  /// Tests that construct thousands of throwaway stores switch this off.
  bool publish_metrics = true;
};

/// Resolves a requested shard count against the SUPA_SHARDS environment
/// variable. 0 means "not specified" at both levels; the result is always
/// in [1, kMaxShards].
inline size_t ResolveNumShards(size_t requested) {
  if (requested == 0) {
    if (const char* env = std::getenv("SUPA_SHARDS")) {
      char* end = nullptr;
      const unsigned long parsed = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0') requested = parsed;
    }
  }
  if (requested == 0) requested = 1;
  if (requested > kMaxShards) requested = kMaxShards;
  return requested;
}

}  // namespace supa::store

#endif  // SUPA_STORE_STORE_OPTIONS_H_
