// bench_compare — perf-regression sentinel over bench JSON reports.
//
//   bench_compare baseline.json candidate.json
//                 [--alpha 0.05] [--min-effect 0.02] [--json-out report.json]
//
// Both inputs are BENCH_fig5.json-style reports carrying a "samples"
// object of per-repeat measurements per metric. Each metric present in
// both files is Welch-t-tested; a metric regresses when the one-sided
// p-value in the adverse direction beats --alpha AND the relative mean
// shift exceeds --min-effect (so significant-but-negligible drift cannot
// fail a build). Prints the verdict table and exits:
//
//   0  no significant regression
//   1  at least one metric regressed
//   2  usage / IO / schema error

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/json_writer.h"
#include "tools/bench_compare_lib.h"
#include "util/json_parse.h"

namespace supa::tools {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json>\n"
               "       [--alpha p] [--min-effect rel] [--json-out path]\n");
  return 2;
}

int Main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  CompareOptions options;
  std::string json_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.alpha = std::atof(v);
    } else if (arg == "--min-effect") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.min_effect = std::atof(v);
    } else if (arg == "--json-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      json_out = v;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return Usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return Usage();

  auto baseline = ParseJsonFile(baseline_path);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = ParseJsonFile(candidate_path);
  if (!candidate.ok()) {
    std::fprintf(stderr, "%s\n", candidate.status().ToString().c_str());
    return 2;
  }

  auto report =
      CompareBenchReports(baseline.value(), candidate.value(), options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }

  std::printf("== bench_compare: %s (baseline) vs %s (candidate), "
              "alpha=%g min-effect=%g ==\n",
              baseline_path.c_str(), candidate_path.c_str(), options.alpha,
              options.min_effect);
  std::fputs(FormatComparisonTable(report.value()).c_str(), stdout);

  if (!json_out.empty()) {
    std::string error;
    if (!obs::WriteTextFile(json_out,
                            ComparisonToJson(report.value(), options) + "\n",
                            &error)) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_out.c_str(),
                   error.c_str());
      return 2;
    }
    std::printf("(wrote %s)\n", json_out.c_str());
  }

  if (report.value().has_regression) {
    std::printf("RESULT: significant regression detected\n");
    return 1;
  }
  std::printf("RESULT: no significant regression\n");
  return 0;
}

}  // namespace
}  // namespace supa::tools

int main(int argc, char** argv) { return supa::tools::Main(argc, argv); }
