// Decision logic of the perf-regression sentinel (tools/bench_compare):
// given two bench reports that carry per-repeat samples per metric
// (BENCH_fig5.json's "samples" object), run a Welch t-test per metric and
// classify each as regression / improvement / noise. Split from the CLI
// so the golden-file tests can drive it directly.
//
// Report schema consumed ("samples" is the only required part):
//   { ..., "samples": { "edges_per_sec": [1012.3, 998.7, ...],
//                       "wall_s":        [12.1, 12.3, ...], ... } }

#ifndef SUPA_TOOLS_BENCH_COMPARE_LIB_H_
#define SUPA_TOOLS_BENCH_COMPARE_LIB_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/json_parse.h"
#include "util/status.h"

namespace supa::tools {

/// Which way "better" points for a metric.
enum class MetricDirection { kHigherIsBetter, kLowerIsBetter };

/// Infers direction from the metric name: time-like suffixes (_s, _ms,
/// _us, _ns, _seconds, _wall) are lower-is-better; everything else
/// (throughputs, scores) is higher-is-better.
MetricDirection DirectionForMetric(std::string_view name);

struct CompareOptions {
  /// Significance level for the one-sided Welch test in the adverse
  /// direction.
  double alpha = 0.05;
  /// Minimum relative mean shift (|cand - base| / base) for a significant
  /// result to gate — keeps statistically-significant-but-tiny drifts
  /// from failing CI.
  double min_effect = 0.02;
};

/// Verdict for one metric present in both reports.
struct MetricComparison {
  std::string name;
  MetricDirection direction = MetricDirection::kHigherIsBetter;
  size_t base_n = 0;
  size_t cand_n = 0;
  double base_mean = 0.0;
  double cand_mean = 0.0;
  double base_stddev = 0.0;
  double cand_stddev = 0.0;
  /// (cand_mean - base_mean) / base_mean; sign is raw, not
  /// direction-adjusted.
  double rel_delta = 0.0;
  /// One-sided p-value that the candidate is *worse* than baseline.
  double p_worse = 1.0;
  /// One-sided p-value that the candidate is *better* than baseline.
  double p_better = 1.0;
  /// Too few samples (< 2 per side) to test; never gates.
  bool insufficient = false;
  bool regression = false;
  bool improvement = false;
};

struct CompareReport {
  std::vector<MetricComparison> metrics;  // name-sorted
  /// Metric names present in only one report (schema drift — reported,
  /// never gated on).
  std::vector<std::string> unmatched;
  bool has_regression = false;
};

/// Compares every metric that has a sample array in both parsed reports.
/// Fails when either report lacks a "samples" object entirely.
Result<CompareReport> CompareBenchReports(const JsonValue& baseline,
                                          const JsonValue& candidate,
                                          const CompareOptions& options);

/// Aligned text table of the verdicts, one metric per row.
std::string FormatComparisonTable(const CompareReport& report);

/// JSON form of the verdicts (for the CI artifact).
std::string ComparisonToJson(const CompareReport& report,
                             const CompareOptions& options);

}  // namespace supa::tools

#endif  // SUPA_TOOLS_BENCH_COMPARE_LIB_H_
