// supa_cli — command-line driver for the library.
//
//   supa_cli generate  --dataset taobao --scale 1 --seed 7 --out edges.tsv
//   supa_cli train     --dataset taobao --checkpoint model.bin [--dim 64]
//                      [--iters 16] [--scale 1] [--seed 7] [--threads N]
//   supa_cli serve     --dataset taobao --checkpoint model.bin
//                      --admin-port 0 [--duration-s 30] [--serve-workers 2]
//   supa_cli eval      --dataset taobao --checkpoint model.bin [--threads N]
//   supa_cli recommend --dataset taobao --checkpoint model.bin --user 3
//                      --relation Buy [--k 10]
//   supa_cli mine      --dataset kuaishou [--scale 1]
//
// `--dataset` names one of the bundled paper-dataset emulators; the same
// (--dataset, --scale, --seed) triple regenerates the identical stream, so
// train/eval/recommend compose across invocations via the checkpoint.
// `--threads` sets the evaluation/validation worker count (0 = all cores,
// the default); results are bit-identical at every setting.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "baselines/recommender.h"
#include "core/checkpoint.h"
#include "data/synthetic.h"
#include "dur/engine.h"
#include "dur/recovery.h"
#include "eval/export.h"
#include "eval/predictor.h"
#include "eval/protocols.h"
#include "graph/metapath_miner.h"
#include "obs/admin_server.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/http.h"
#include "util/tsv.h"

namespace supa {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    auto v = ParseDouble(it->second);
    return v.ok() ? v.value() : fallback;
  }
  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    auto v = ParseUint(it->second);
    return v.ok() ? v.value() : fallback;
  }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      return Status::InvalidArgument(std::string("expected flag, got ") +
                                     argv[i]);
    }
    args.flags[argv[i] + 2] = argv[i + 1];
  }
  return args;
}

Result<Dataset> LoadDataset(const Args& args) {
  return MakePaperDataset(args.Get("dataset", "taobao"),
                          args.GetDouble("scale", 1.0),
                          args.GetUint("seed", 7));
}

SupaConfig ModelConfig(const Args& args) {
  SupaConfig c;
  c.dim = static_cast<int>(args.GetUint("dim", 64));
  c.seed = args.GetUint("model-seed", 42);
  // 0 defers to SUPA_SHARDS, then 1. Placement only — results are
  // bit-identical at every shard count.
  c.shards = static_cast<size_t>(args.GetUint("shards", 0));
  return c;
}

int CmdGenerate(const Args& args) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const std::string out = args.Get("out", "edges.tsv");
  if (Status st = SaveEdgesTsv(data.value(), out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s: %zu nodes, %zu edges -> %s\n", data.value().name.c_str(),
              data.value().num_nodes(), data.value().num_edges(),
              out.c_str());
  return 0;
}

/// Spins up a ServeEngine over `model` and exposes POST/GET /recommend on
/// the admin server (when one is running). Shared by `train --serve` and
/// the `serve` command.
std::unique_ptr<serve::ServeEngine> StartServing(const Args& args,
                                                 const SupaModel* model,
                                                 const Dataset& data,
                                                 obs::AdminServer* admin,
                                                 size_t workers) {
  serve::ServeOptions options;
  options.workers = workers;
  options.max_batch = static_cast<size_t>(args.GetUint("serve-batch", 8));
  options.max_queue = static_cast<size_t>(args.GetUint("serve-queue", 1024));
  options.default_k = static_cast<size_t>(args.GetUint("k", 10));
  auto engine = std::make_unique<serve::ServeEngine>(model, &data, options);
  engine->Start();
  if (admin != nullptr) {
    serve::RegisterRecommendRoutes(admin, engine.get(), &data);
    serve::ServeEngine* raw = engine.get();
    admin->AddReadinessProbe("serve", [raw] { return raw->running(); });
  }
  std::fprintf(stderr, "serving /recommend with %zu workers (%zu candidates)\n",
               options.workers, engine->candidates().size());
  return engine;
}

/// Shared by train and recover so a recovered run trains under exactly
/// the configuration the crashed run used.
Result<InsLearnConfig> TrainerConfig(const Args& args) {
  InsLearnConfig tc;
  tc.max_iters = static_cast<int>(args.GetUint("iters", 16));
  tc.valid_interval = 4;
  tc.threads = static_cast<size_t>(args.GetUint("threads", 0));
  tc.heartbeat_seconds = args.GetDouble("heartbeat", 0.0);
  // 0 defers to SUPA_WRITER_THREADS, then 1 (the serial loop). `strict`
  // commits are bit-identical to serial at any writer count; `fast`
  // relaxes only within-group α staleness (DESIGN.md §13).
  tc.writer_threads = static_cast<size_t>(args.GetUint("writer-threads", 0));
  const std::string ingest_mode = args.Get("ingest", "strict");
  if (ingest_mode == "fast") {
    tc.ingest_mode = IngestMode::kFast;
  } else if (ingest_mode != "strict") {
    return Status::InvalidArgument("unknown --ingest mode '" + ingest_mode +
                                   "' (strict|fast)");
  }
  tc.ckpt_interval = static_cast<size_t>(args.GetUint("ckpt-interval", 1));
  return tc;
}

/// Attaches a DurabilityEngine when --wal-dir is set; returns null (OK)
/// otherwise.
Result<std::unique_ptr<dur::DurabilityEngine>> MaybeAttachDurability(
    const Args& args, SupaModel& model) {
  const std::string wal_dir = args.Get("wal-dir", "");
  if (wal_dir.empty()) return std::unique_ptr<dur::DurabilityEngine>();
  dur::DurabilityOptions options;
  options.dir = wal_dir;
  if (!dur::ParseWalSync(args.Get("wal-sync", "batch"), &options.wal_sync)) {
    return Status::InvalidArgument("unknown --wal-sync mode '" +
                                   args.Get("wal-sync", "") +
                                   "' (every|batch|off)");
  }
  options.compact_threshold =
      static_cast<size_t>(args.GetUint("compact-threshold", 8));
  return dur::DurabilityEngine::Attach(model, options);
}

int CmdTrain(const Args& args, obs::AdminServer* admin) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  SupaModel model(data.value(), ModelConfig(args));

  // --serve N scores /recommend on N workers *while training runs* —
  // serving reads epoch snapshots only, so the checkpoint bytes below are
  // bit-identical with serving on or off (CI pins this).
  std::unique_ptr<serve::ServeEngine> engine;
  const size_t serve_workers = static_cast<size_t>(args.GetUint("serve", 0));
  if (serve_workers > 0) {
    engine = StartServing(args, &model, data.value(), admin, serve_workers);
  }

  auto tc = TrainerConfig(args);
  if (!tc.ok()) {
    std::fprintf(stderr, "%s\n", tc.status().ToString().c_str());
    return 1;
  }
  auto durability = MaybeAttachDurability(args, model);
  if (!durability.ok()) {
    std::fprintf(stderr, "%s\n", durability.status().ToString().c_str());
    return 1;
  }
  tc.value().checkpoint_sink = durability.value().get();

  InsLearnTrainer trainer(tc.value());
  auto report = trainer.Train(model, data.value(), split.train);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (durability.value() != nullptr) {
    // Every enqueued link must be durable before the run is declared done.
    if (Status st = durability.value()->Flush(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::string ckpt = args.Get("checkpoint", "supa_model.bin");
  if (Status st = SaveCheckpoint(model, ckpt); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("trained %zu edges in %zu batches (%zu steps) -> %s\n",
              split.train.size(), report.value().num_batches,
              report.value().train_steps, ckpt.c_str());
  if (engine != nullptr) {
    // --serve-linger keeps the engine (and admin endpoints) up after
    // training so an external load generator can finish its measurement.
    const double linger_s = args.GetDouble("serve-linger", 0.0);
    if (linger_s > 0.0) {
      std::fprintf(stderr, "serving for another %.1fs\n", linger_s);
      std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
    }
    engine->Stop();
    std::fprintf(stderr, "served %llu requests (%llu rejected)\n",
                 static_cast<unsigned long long>(engine->requests_served()),
                 static_cast<unsigned long long>(engine->requests_rejected()));
  }
  return 0;
}

/// `recover`: rebuild a killed `train --wal-dir` run from its durability
/// directory and finish it. Must be invoked with the same
/// --dataset/--scale/--seed, model flags, and trainer flags as the
/// crashed run; the checkpoint it writes is bit-identical to the one the
/// uninterrupted run would have written (CI's crash-recovery smoke pins
/// this with cmp).
int CmdRecover(const Args& args) {
  const std::string wal_dir = args.Get("wal-dir", "");
  if (wal_dir.empty()) {
    std::fprintf(stderr, "recover requires --wal-dir\n");
    return 2;
  }
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  SupaModel model(data.value(), ModelConfig(args));

  auto recovered = dur::Recover(wal_dir, &model);
  if (!recovered.ok()) {
    std::fprintf(stderr, "%s\n", recovered.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "recovered %s: %llu checkpoint links, %llu WAL records "
               "replayed%s in %.3fs\n",
               wal_dir.c_str(),
               static_cast<unsigned long long>(recovered.value().links_applied),
               static_cast<unsigned long long>(
                   recovered.value().wal_records_replayed),
               recovered.value().used_fallback_link ? " (fallback link)" : "",
               recovered.value().seconds);

  auto tc = TrainerConfig(args);
  if (!tc.ok()) {
    std::fprintf(stderr, "%s\n", tc.status().ToString().c_str());
    return 1;
  }
  auto durability = MaybeAttachDurability(args, model);
  if (!durability.ok()) {
    std::fprintf(stderr, "%s\n", durability.status().ToString().c_str());
    return 1;
  }
  tc.value().checkpoint_sink = durability.value().get();

  InsLearnTrainer trainer(tc.value());
  auto report = trainer.Train(model, data.value(), split.train,
                              &recovered.value().cursor);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  if (Status st = durability.value()->Flush(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const std::string ckpt = args.Get("checkpoint", "supa_model.bin");
  if (Status st = SaveCheckpoint(model, ckpt); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("resumed training finished %zu batches -> %s\n",
              report.value().num_batches, ckpt.c_str());
  return 0;
}

/// Rebuilds the model state needed for scoring: checkpoint params + the
/// training-prefix graph.
Result<std::unique_ptr<SupaModel>> RestoreModel(const Args& args,
                                                const Dataset& data,
                                                EdgeRange observed) {
  auto model = std::make_unique<SupaModel>(data, ModelConfig(args));
  for (size_t i = observed.begin; i < observed.end; ++i) {
    SUPA_RETURN_NOT_OK(model->ObserveEdge(data.edges[i]));
  }
  SUPA_RETURN_NOT_OK(
      LoadCheckpoint(args.Get("checkpoint", "supa_model.bin"), model.get()));
  return model;
}

/// `serve`: restore a checkpoint and serve /recommend until --duration-s
/// elapses. Requires --admin-port (the engine is only reachable over
/// HTTP in this mode).
int CmdServe(const Args& args, obs::AdminServer* admin) {
  if (admin == nullptr) {
    std::fprintf(stderr, "serve requires --admin-port\n");
    return 2;
  }
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  auto model = RestoreModel(args, data.value(), split.train);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  auto engine =
      StartServing(args, model.value().get(), data.value(), admin,
                   static_cast<size_t>(args.GetUint("serve-workers", 2)));
  const double duration_s = args.GetDouble("duration-s", 30.0);
  std::this_thread::sleep_for(std::chrono::duration<double>(duration_s));
  engine->Stop();
  std::printf("served %llu requests (%llu rejected) in %.1fs\n",
              static_cast<unsigned long long>(engine->requests_served()),
              static_cast<unsigned long long>(engine->requests_rejected()),
              duration_s);
  return 0;
}

int CmdEval(const Args& args) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  auto model = RestoreModel(args, data.value(), split.train);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  // Wrap for the protocol. Scoring goes through an epoch snapshot so the
  // protocol's worker threads never touch the live store.
  class Wrapper : public Recommender {
   public:
    explicit Wrapper(SupaModel* m) : m_(m), snap_(m->AcquireSnapshot()) {}
    std::string name() const override { return "SUPA"; }
    Status Fit(const Dataset&, EdgeRange) override { return Status::OK(); }
    double Score(NodeId u, NodeId v, EdgeTypeId r) const override {
      return m_->ScoreOn(*snap_, u, v, r);
    }

   private:
    SupaModel* m_;
    std::shared_ptr<const store::StoreSnapshot> snap_;
  } wrapper(model.value().get());

  EvalConfig eval;
  eval.max_test_edges = args.GetUint("test-edges", 500);
  eval.threads = static_cast<size_t>(args.GetUint("threads", 0));
  auto r = EvaluateLinkPrediction(wrapper, data.value(), split.test,
                                  EdgeRange{0, split.valid.end}, eval);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("H@20 %.4f | H@50 %.4f | NDCG@10 %.4f | MRR %.4f (%zu cases)\n",
              r.value().hit20, r.value().hit50, r.value().ndcg10,
              r.value().mrr, r.value().evaluated);
  return 0;
}

int CmdRecommend(const Args& args) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  auto model = RestoreModel(args, data.value(), split.train);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const NodeId user = static_cast<NodeId>(args.GetUint("user", 0));
  auto relation =
      data.value().schema.EdgeType(args.Get("relation", ""));
  const EdgeTypeId rel =
      relation.ok() ? relation.value() : data.value().target_relations[0];

  class Wrapper : public Recommender {
   public:
    explicit Wrapper(SupaModel* m) : m_(m), snap_(m->AcquireSnapshot()) {}
    std::string name() const override { return "SUPA"; }
    Status Fit(const Dataset&, EdgeRange) override { return Status::OK(); }
    double Score(NodeId u, NodeId v, EdgeTypeId r) const override {
      return m_->ScoreOn(*snap_, u, v, r);
    }

   private:
    SupaModel* m_;
    std::shared_ptr<const store::StoreSnapshot> snap_;
  } wrapper(model.value().get());

  TopKOptions options;
  options.k = args.GetUint("k", 10);
  options.seen = split.train;
  auto top = RecommendTopK(wrapper, data.value(), user, rel, options);
  if (!top.ok()) {
    std::fprintf(stderr, "%s\n", top.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%zu %s recommendations for node %u:\n", options.k,
              data.value().schema.EdgeTypeName(rel).c_str(), user);
  for (const auto& item : top.value()) {
    std::printf("  node %u  score %.4f\n", item.item, item.score);
  }
  return 0;
}

int CmdExport(const Args& args) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTemporal(data.value()).value();
  auto model = RestoreModel(args, data.value(), split.train);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  class Wrapper : public Recommender {
   public:
    explicit Wrapper(SupaModel* m, int dim)
        : m_(m), dim_(dim), snap_(m->AcquireSnapshot()) {}
    std::string name() const override { return "SUPA"; }
    Status Fit(const Dataset&, EdgeRange) override { return Status::OK(); }
    double Score(NodeId u, NodeId v, EdgeTypeId r) const override {
      return m_->ScoreOn(*snap_, u, v, r);
    }
    Result<std::vector<float>> Embedding(NodeId v,
                                         EdgeTypeId r) const override {
      std::vector<float> out(static_cast<size_t>(dim_));
      m_->FinalEmbeddingOn(*snap_, v, r, out.data());
      return out;
    }

   private:
    SupaModel* m_;
    int dim_;
    std::shared_ptr<const store::StoreSnapshot> snap_;
  } wrapper(model.value().get(),
            static_cast<int>(args.GetUint("dim", 64)));

  auto relation =
      data.value().schema.EdgeType(args.Get("relation", ""));
  ExportOptions options;
  options.relation =
      relation.ok() ? relation.value() : data.value().target_relations[0];
  const std::string out = args.Get("out", "embeddings.tsv");
  if (Status st = ExportEmbeddings(wrapper, data.value(), out, options);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("exported %zu node embeddings (relation %s) -> %s\n",
              data.value().num_nodes(),
              data.value().schema.EdgeTypeName(options.relation).c_str(),
              out.c_str());
  return 0;
}

int CmdMine(const Args& args) {
  auto data = LoadDataset(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto graph = data.value().BuildGraphPrefix(data.value().num_edges()).value();
  MinerConfig miner;
  miner.num_walks = args.GetUint("walks", 8000);
  miner.skeleton_support = 0.005;
  auto mined = MineMetapaths(graph, miner);
  if (!mined.ok()) {
    std::fprintf(stderr, "%s\n", mined.status().ToString().c_str());
    return 1;
  }
  std::printf("mined %zu schemas from %s:\n", mined.value().size(),
              data.value().name.c_str());
  for (const auto& mp : mined.value()) {
    std::printf("  %s\n", mp.ToString(data.value().schema).c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: supa_cli "
               "<generate|train|recover|serve|eval|recommend|mine|export> "
               "[--flag value]...\n"
               "durability (train/recover):\n"
               "  --wal-dir <dir>       write-ahead-log every graph "
               "mutation and take incremental checkpoints into <dir>; a "
               "killed run restarts bit-identically via `recover`\n"
               "  --wal-sync <mode>     every (fdatasync per record), "
               "batch (per durable cut; default), off\n"
               "  --ckpt-interval <n>   batches between durable cuts "
               "(default 1)\n"
               "  --compact-threshold <n>  deltas tolerated before the "
               "chain is folded into a fresh base (default 8)\n"
               "  recover --wal-dir D   rebuild the crashed run's state, "
               "resume, and finish training (same flags as train)\n"
               "serving:\n"
               "  train --serve <n>     score POST /recommend on n workers "
               "while training runs (results and checkpoint bytes stay "
               "bit-identical); --serve-linger <secs> keeps serving after "
               "training\n"
               "  serve --checkpoint C --admin-port P [--duration-s S]\n"
               "                        serve a restored checkpoint "
               "(static) for S seconds\n"
               "  --serve-batch/--serve-queue/--k tune the engine\n"
               "storage (train/eval/recommend/export):\n"
               "  --shards <n>          shard the storage engine across n "
               "banks (0 = SUPA_SHARDS env, then 1; results and checkpoint "
               "bytes are bit-identical at every value)\n"
               "ingest (train):\n"
               "  --writer-threads <n>  concurrent embedding-math writers "
               "(0 = SUPA_WRITER_THREADS env, then 1 = serial loop)\n"
               "  --ingest <mode>       strict (default; bit-identical to "
               "serial at any writer count) or fast (deterministic, relaxes "
               "within-group alpha staleness)\n"
               "observability (any command):\n"
               "  --metrics-out <path>  write a metrics-registry JSON "
               "snapshot on exit (and print the table)\n"
               "  --trace-out <path>    record trace spans and write Chrome "
               "trace JSON on exit\n"
               "  --perf-out <path>     profile hardware counters "
               "(perf_event_open, with software/rusage fallback) and write "
               "the per-domain profile JSON on exit; also live at "
               "/profilez\n"
               "  --model-out <path>    monitor model & data-quality "
               "signals (loss/gradient/stream sketches, drift detectors) "
               "and write the report JSON on exit; also live at /modelz\n"
               "  --heartbeat <secs>    train: log a throughput line every "
               "~<secs> seconds\n"
               "  --admin-port <port>   serve /metrics /healthz /statusz "
               "/tracez /profilez /modelz on 127.0.0.1 while the command "
               "runs (0 = ephemeral port; env: SUPA_ADMIN_PORT)\n");
  return 2;
}

int Dispatch(const std::string& cmd, const Args& args,
             obs::AdminServer* admin) {
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "train") return CmdTrain(args, admin);
  if (cmd == "recover") return CmdRecover(args);
  if (cmd == "serve") return CmdServe(args, admin);
  if (cmd == "eval") return CmdEval(args);
  if (cmd == "recommend") return CmdRecommend(args);
  if (cmd == "mine") return CmdMine(args);
  if (cmd == "export") return CmdExport(args);
  return Usage();
}

int Main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) return Usage();

  const std::string metrics_out = args.value().Get("metrics-out", "");
  const std::string trace_out = args.value().Get("trace-out", "");
  const std::string perf_out = args.value().Get("perf-out", "");
  const std::string model_out = args.value().Get("model-out", "");
  if (!trace_out.empty()) obs::TraceRecorder::Global().Enable(true);
  if (!perf_out.empty()) obs::PerfProfiler::Global().Enable(true);
  if (!model_out.empty()) obs::ModelMonitor::Global().Enable(true);

  // --admin-port (or SUPA_ADMIN_PORT) serves the live telemetry endpoints
  // for the lifetime of the command. The bound port goes to stderr so
  // scripts can parse it when asking for an ephemeral port (0).
  std::unique_ptr<obs::AdminServer> admin;
  std::string admin_port = args.value().Get("admin-port", "");
  if (admin_port.empty()) {
    if (const char* env = std::getenv("SUPA_ADMIN_PORT")) admin_port = env;
  }
  if (!admin_port.empty()) {
    auto port = ParseUint(admin_port);
    if (!port.ok() || port.value() > 65535) {
      std::fprintf(stderr, "bad admin port: %s\n", admin_port.c_str());
      return 2;
    }
    obs::AdminServerOptions options;
    options.port = static_cast<uint16_t>(port.value());
    admin = std::make_unique<obs::AdminServer>(options);
    std::string error;
    if (!admin->Start(&error)) {
      std::fprintf(stderr, "admin server failed to start: %s\n",
                   error.c_str());
      return 2;
    }
    std::fprintf(stderr, "admin server listening on http://127.0.0.1:%u\n",
                 admin->port());
  }

  const int rc = Dispatch(args.value().command, args.value(), admin.get());
  if (admin != nullptr) admin->Stop();

  // Observability exports are written even when the command failed — a
  // partial run's metrics are exactly what one wants when diagnosing it.
  if (!trace_out.empty()) {
    obs::TraceRecorder::Global().Enable(false);
    std::string error;
    if (!obs::TraceRecorder::Global().WriteJson(trace_out, &error)) {
      std::fprintf(stderr, "failed to write trace: %s\n", error.c_str());
      return rc == 0 ? 1 : rc;
    }
    std::fprintf(stderr, "trace (%zu spans) -> %s\n",
                 obs::TraceRecorder::Global().recorded_events(),
                 trace_out.c_str());
  }
  if (!perf_out.empty()) {
    obs::PerfProfiler::Global().Enable(false);
    std::string error;
    if (!obs::WritePerfJson(obs::MetricsRegistry::Global(), perf_out,
                            &error)) {
      std::fprintf(stderr, "failed to write perf profile: %s\n",
                   error.c_str());
      return rc == 0 ? 1 : rc;
    }
    std::fprintf(stderr, "perf profile (source=%s) -> %s\n",
                 obs::PerfSourceName(obs::PerfProfiler::Global().source()),
                 perf_out.c_str());
  }
  if (!model_out.empty()) {
    obs::ModelMonitor::Global().Enable(false);
    std::string error;
    if (!obs::WriteModelJson(model_out, &error)) {
      std::fprintf(stderr, "failed to write model report: %s\n",
                   error.c_str());
      return rc == 0 ? 1 : rc;
    }
    const obs::ModelMonitorSnapshot model =
        obs::ModelMonitor::Global().Snapshot();
    std::fprintf(stderr,
                 "model report (%llu train steps, alert level %s) -> %s\n",
                 static_cast<unsigned long long>(model.train_steps),
                 obs::AlertLevelName(model.worst_level), model_out.c_str());
  }
  if (!metrics_out.empty()) {
    const auto snapshot = obs::MetricsRegistry::Global().Snapshot();
    std::fputs(snapshot.ToTable().c_str(), stdout);
    std::string error;
    if (!obs::WriteTextFile(metrics_out, snapshot.ToJson(), &error)) {
      std::fprintf(stderr, "failed to write metrics: %s\n", error.c_str());
      return rc == 0 ? 1 : rc;
    }
    std::fprintf(stderr, "metrics -> %s\n", metrics_out.c_str());
  }
  return rc;
}

}  // namespace
}  // namespace supa

int main(int argc, char** argv) { return supa::Main(argc, argv); }
