#include "tools/bench_compare_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json_writer.h"
#include "util/stats.h"

namespace supa::tools {
namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<std::vector<double>> SampleArray(const JsonValue& samples,
                                        const std::string& name) {
  const JsonValue* arr = samples.Find(name);
  if (arr == nullptr || !arr->is_array()) {
    return Status::InvalidArgument("samples." + name + " is not an array");
  }
  std::vector<double> out;
  out.reserve(arr->array().size());
  for (const JsonValue& v : arr->array()) {
    if (!v.is_number()) {
      return Status::InvalidArgument("samples." + name +
                                     " holds a non-number");
    }
    out.push_back(v.number_value());
  }
  return out;
}

std::string FormatSigned(double v, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%+.*f", digits, v);
  return buf;
}

std::string FormatG(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

MetricDirection DirectionForMetric(std::string_view name) {
  // Throughput- and quality-score metrics (explicitly higher-is-better,
  // so a future default change cannot flip them). "_ipc" covers the
  // hardware-profile instructions-per-cycle samples; "_mrr" / "_hits"
  // cover the model-quality sample arrays.
  for (std::string_view suffix :
       {"_ipc", "_per_sec", "_throughput", "_mrr", "_hits"}) {
    if (EndsWith(name, suffix)) return MetricDirection::kHigherIsBetter;
  }
  // Cost-style metrics: wall/latency times plus the hardware-profile
  // counters ("_cycles_per_edge" is listed separately because
  // EndsWith("_cycles") does not match it). "_loss" / "_grad_norm" are
  // the model-quality arrays where up means worse — these gate a quality
  // regression even when wall-clock metrics are unchanged.
  for (std::string_view suffix :
       {"_s", "_ms", "_us", "_ns", "_seconds", "_wall", "_latency",
        "_miss_rate", "_cycles", "_misses", "_cycles_per_edge", "_loss",
        "_grad_norm"}) {
    if (EndsWith(name, suffix)) return MetricDirection::kLowerIsBetter;
  }
  return MetricDirection::kHigherIsBetter;
}

Result<CompareReport> CompareBenchReports(const JsonValue& baseline,
                                          const JsonValue& candidate,
                                          const CompareOptions& options) {
  const JsonValue* base_samples = baseline.Find("samples");
  const JsonValue* cand_samples = candidate.Find("samples");
  if (base_samples == nullptr || !base_samples->is_object()) {
    return Status::InvalidArgument(
        "baseline report has no \"samples\" object (old schema? re-run the "
        "bench)");
  }
  if (cand_samples == nullptr || !cand_samples->is_object()) {
    return Status::InvalidArgument(
        "candidate report has no \"samples\" object");
  }

  CompareReport report;
  for (const auto& [name, value] : base_samples->object()) {
    (void)value;
    if (cand_samples->Find(name) == nullptr) {
      report.unmatched.push_back("baseline-only: " + name);
    }
  }
  for (const auto& [name, value] : cand_samples->object()) {
    (void)value;
    if (base_samples->Find(name) == nullptr) {
      report.unmatched.push_back("candidate-only: " + name);
    }
  }

  // std::map iteration is name-sorted, so the table order is stable.
  for (const auto& [name, value] : base_samples->object()) {
    (void)value;
    if (cand_samples->Find(name) == nullptr) continue;
    SUPA_ASSIGN_OR_RETURN(const std::vector<double> base,
                          SampleArray(*base_samples, name));
    SUPA_ASSIGN_OR_RETURN(const std::vector<double> cand,
                          SampleArray(*cand_samples, name));

    MetricComparison m;
    m.name = name;
    m.direction = DirectionForMetric(name);
    m.base_n = base.size();
    m.cand_n = cand.size();
    m.base_mean = Mean(base);
    m.cand_mean = Mean(cand);
    m.base_stddev = SampleStddev(base);
    m.cand_stddev = SampleStddev(cand);
    m.rel_delta = m.base_mean != 0.0
                      ? (m.cand_mean - m.base_mean) / std::fabs(m.base_mean)
                      : 0.0;

    if (base.size() < 2 || cand.size() < 2) {
      m.insufficient = true;
      report.metrics.push_back(std::move(m));
      continue;
    }
    auto test = WelchTTest(base, cand);
    if (!test.ok()) return test.status();
    // p_greater is P(mean(base) > mean(cand) arose by chance)-style
    // one-sided evidence; map it onto "worse"/"better" via the metric's
    // direction.
    const double p_base_greater = test.value().p_greater;
    const double p_cand_greater = 1.0 - p_base_greater;
    if (m.direction == MetricDirection::kHigherIsBetter) {
      m.p_worse = p_base_greater;
      m.p_better = p_cand_greater;
    } else {
      m.p_worse = p_cand_greater;
      m.p_better = p_base_greater;
    }
    const double adverse_delta = m.direction == MetricDirection::kHigherIsBetter
                                     ? -m.rel_delta
                                     : m.rel_delta;
    m.regression =
        m.p_worse < options.alpha && adverse_delta > options.min_effect;
    m.improvement =
        m.p_better < options.alpha && -adverse_delta > options.min_effect;
    report.has_regression = report.has_regression || m.regression;
    report.metrics.push_back(std::move(m));
  }
  return report;
}

std::string FormatComparisonTable(const CompareReport& report) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"metric", "dir", "baseline", "candidate", "delta",
                  "p(worse)", "verdict"});
  for (const MetricComparison& m : report.metrics) {
    std::string verdict = "ok";
    if (m.insufficient) {
      verdict = "insufficient-samples";
    } else if (m.regression) {
      verdict = "REGRESSION";
    } else if (m.improvement) {
      verdict = "improvement";
    }
    rows.push_back(
        {m.name,
         m.direction == MetricDirection::kHigherIsBetter ? "up" : "down",
         FormatG(m.base_mean) + " ±" + FormatG(m.base_stddev),
         FormatG(m.cand_mean) + " ±" + FormatG(m.cand_stddev),
         FormatSigned(100.0 * m.rel_delta, 2) + "%",
         m.insufficient ? "-" : FormatG(m.p_worse), verdict});
  }
  std::vector<size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out += row[i];
      if (i + 1 < row.size()) out.append(widths[i] - row[i].size() + 2, ' ');
    }
    out += '\n';
  }
  for (const std::string& u : report.unmatched) {
    out += "note: " + u + "\n";
  }
  return out;
}

std::string ComparisonToJson(const CompareReport& report,
                             const CompareOptions& options) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Field("alpha", options.alpha);
  w.Field("min_effect", options.min_effect);
  w.Field("has_regression", report.has_regression);
  w.Key("metrics").BeginArray();
  for (const MetricComparison& m : report.metrics) {
    w.BeginObject();
    w.Field("name", m.name);
    w.Field("direction",
            std::string_view(m.direction == MetricDirection::kHigherIsBetter
                                 ? "higher_is_better"
                                 : "lower_is_better"));
    w.Field("base_n", static_cast<uint64_t>(m.base_n));
    w.Field("cand_n", static_cast<uint64_t>(m.cand_n));
    w.Field("base_mean", m.base_mean);
    w.Field("cand_mean", m.cand_mean);
    w.Field("base_stddev", m.base_stddev);
    w.Field("cand_stddev", m.cand_stddev);
    w.Field("rel_delta", m.rel_delta);
    w.Field("p_worse", m.p_worse);
    w.Field("p_better", m.p_better);
    w.Field("insufficient", m.insufficient);
    w.Field("regression", m.regression);
    w.Field("improvement", m.improvement);
    w.EndObject();
  }
  w.EndArray();
  w.Key("unmatched").BeginArray();
  for (const std::string& u : report.unmatched) w.String(u);
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace supa::tools
