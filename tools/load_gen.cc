// load_gen — load harness for the serving layer.
//
// Drives POST /recommend (HTTP mode) or a ServeEngine linked in-process
// with Zipf-skewed user popularity, and reports tail latency + throughput
// as a BENCH_serve.json the perf sentinel (tools/bench_compare) consumes.
//
//   # HTTP, closed loop: 8 clients hammering a live supa_cli --serve run
//   load_gen --target http://127.0.0.1:8080 --mode closed
//            --concurrency 8 --duration-s 5 --repeats 3
//            --json-out BENCH_serve.json
//
//   # in-process, open loop at 2000 req/s over a checkpoint
//   load_gen --dataset taobao --checkpoint model.bin
//            --mode open --qps 2000 --duration-s 5
//
// Modes:
//   closed  `--concurrency` workers each keep exactly one request in
//           flight; latency is the service time a saturated client sees.
//   open    requests arrive on a fixed schedule (`--qps`), independent of
//           completions; latency is measured from the *scheduled* arrival,
//           so a stalled server accrues queueing delay instead of being
//           silently forgiven (coordinated omission).
//
// User popularity is Zipf(θ) over the dataset's query-type nodes
// (util/zipf.h FastZipf, θ = 0.99 by default — the classic YCSB skew).
// Worker w draws from an Rng seeded SplitMix64At(seed, w), so the offered
// load is reproducible bit-for-bit at any concurrency.
//
// Exit status: 0 when every repeat completed and at least `--min-requests`
// requests succeeded (CI's serving-smoke gate), 1 otherwise.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/engine.h"
#include "serve/latency_recorder.h"
#include "util/rng.h"
#include "util/tsv.h"
#include "util/zipf.h"

namespace supa {
namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    auto v = ParseDouble(it->second);
    return v.ok() ? v.value() : fallback;
  }
  uint64_t GetUint(const std::string& key, uint64_t fallback) const {
    auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    auto v = ParseUint(it->second);
    return v.ok() ? v.value() : fallback;
  }
};

/// One request sender. Implementations must be safe to call from many
/// worker threads at once.
class Client {
 public:
  virtual ~Client() = default;
  /// Sends one recommendation request; true on success (HTTP 200 / OK).
  virtual bool Send(NodeId user, EdgeTypeId relation, size_t k) = 0;
  /// Largest staleness_edges observed in a response (0 when the client
  /// does not see response bodies).
  virtual uint64_t max_staleness() const { return 0; }
};

// ---------------------------------------------------------------------------
// HTTP client: one POST /recommend per connection (the admin server is
// Connection: close), raw POSIX sockets, no third-party dependencies.

class HttpClient : public Client {
 public:
  HttpClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  bool Send(NodeId user, EdgeTypeId relation, size_t k) override {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    char body[96];
    const int body_len =
        std::snprintf(body, sizeof(body), "{\"user\":%u,\"relation\":%u,\"k\":%zu}",
                      user, static_cast<unsigned>(relation), k);
    char head[256];
    const int head_len = std::snprintf(
        head, sizeof(head),
        "POST /recommend HTTP/1.1\r\nHost: %s\r\nContent-Type: "
        "application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
        host_.c_str(), body_len);
    bool ok = WriteAll(fd, head, static_cast<size_t>(head_len)) &&
              WriteAll(fd, body, static_cast<size_t>(body_len));
    int status = 0;
    if (ok) status = ReadStatus(fd);
    ::close(fd);
    return ok && status == 200;
  }

 private:
  static bool WriteAll(int fd, const char* data, size_t len) {
    size_t sent = 0;
    while (sent < len) {
      const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Drains the response (peer closes) and returns the status-line code.
  static int ReadStatus(int fd) {
    std::string response;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
      if (response.size() > (1u << 20)) break;  // runaway response
    }
    // "HTTP/1.1 200 OK"
    const size_t space = response.find(' ');
    if (space == std::string::npos || space + 4 > response.size()) return 0;
    return std::atoi(response.c_str() + space + 1);
  }

  std::string host_;
  uint16_t port_;
};

// ---------------------------------------------------------------------------
// In-process client over a ServeEngine (no network, measures the engine).

class InprocClient : public Client {
 public:
  explicit InprocClient(serve::ServeEngine* engine) : engine_(engine) {}

  bool Send(NodeId user, EdgeTypeId relation, size_t k) override {
    serve::RecommendRequest req;
    req.user = user;
    req.relation = relation;
    req.k = k;
    serve::RecommendResponse resp;
    if (!engine_->Recommend(req, &resp).ok()) return false;
    uint64_t seen = max_staleness_.load(std::memory_order_relaxed);
    while (resp.staleness_edges > seen &&
           !max_staleness_.compare_exchange_weak(seen, resp.staleness_edges,
                                                 std::memory_order_relaxed)) {
    }
    return true;
  }

  uint64_t max_staleness() const override {
    return max_staleness_.load(std::memory_order_relaxed);
  }

 private:
  serve::ServeEngine* engine_;
  std::atomic<uint64_t> max_staleness_{0};
};

// ---------------------------------------------------------------------------
// Load loops.

struct LoadPlan {
  bool open_loop = false;
  size_t concurrency = 4;
  double qps = 1000.0;  // open loop only
  double duration_s = 5.0;
  double theta = 0.99;
  size_t k = 10;
  EdgeTypeId relation = 0;
  uint64_t seed = 1;
};

struct WorkerResult {
  serve::LatencyRecorder latencies;
  uint64_t errors = 0;
};

/// Runs one repeat of the plan against `client`; returns merged latencies
/// and the true wall duration (the QPS denominator).
serve::RepeatSummary RunRepeat(Client* client, const LoadPlan& plan,
                               const std::vector<NodeId>& users,
                               uint64_t repeat_index, bool record) {
  const FastZipf zipf(users.size(), plan.theta);
  std::vector<WorkerResult> results(plan.concurrency);
  std::vector<std::thread> threads;
  threads.reserve(plan.concurrency);

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(plan.duration_s));
  std::atomic<uint64_t> arrivals{0};  // open loop: next arrival index

  for (size_t w = 0; w < plan.concurrency; ++w) {
    threads.emplace_back([&, w] {
      // Seed differs per worker *and* per repeat so repeats are
      // independent draws from the same popularity law.
      Rng rng(SplitMix64At(plan.seed, repeat_index * 1000003 + w));
      WorkerResult& out = results[w];
      while (true) {
        Clock::time_point issued;
        if (plan.open_loop) {
          const uint64_t i = arrivals.fetch_add(1, std::memory_order_relaxed);
          issued = start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   static_cast<double>(i) / plan.qps));
          if (issued >= deadline) return;
          std::this_thread::sleep_until(issued);
        } else {
          issued = Clock::now();
          if (issued >= deadline) return;
        }
        const NodeId user = users[zipf.Sample(rng)];
        const bool ok = client->Send(user, plan.relation, plan.k);
        if (!record) continue;
        if (ok) {
          // Open loop measures from the scheduled arrival, closed loop
          // from issue time — both end at completion.
          out.latencies.Record(
              std::chrono::duration<double, std::micro>(Clock::now() - issued)
                  .count());
        } else {
          ++out.errors;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  serve::LatencyRecorder merged;
  uint64_t errors = 0;
  for (WorkerResult& r : results) {
    merged.Merge(std::move(r.latencies));
    errors += r.errors;
  }
  return serve::SummarizeRepeat(&merged, wall_s, errors);
}

// ---------------------------------------------------------------------------

int Usage() {
  std::fprintf(
      stderr,
      "usage: load_gen (--target http://127.0.0.1:PORT | --dataset D "
      "--checkpoint C) [options]\n"
      "  --mode open|closed     arrival model (default closed)\n"
      "  --concurrency N        client threads (default 4)\n"
      "  --qps Q                open-loop arrival rate (default 1000)\n"
      "  --duration-s S         measured seconds per repeat (default 5)\n"
      "  --warmup-s S           unrecorded warmup before repeat 1 "
      "(default 0.5)\n"
      "  --repeats N            measured repeats (default 3)\n"
      "  --theta T              Zipf skew in [0,1) (default 0.99)\n"
      "  --k K                  top-K per request (default 10)\n"
      "  --relation R           edge type id or name (default: first "
      "target relation)\n"
      "  --seed S               load RNG seed (default 1)\n"
      "  --min-requests N       exit 1 unless >= N requests succeeded "
      "(default 1)\n"
      "  --json-out PATH        write BENCH_serve.json-style report\n"
      "in-process mode extras: --scale, --dim, --shards, --model-seed, "
      "--serve-workers\n");
  return 2;
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    args.flags[argv[i] + 2] = argv[i + 1];
  }

  LoadPlan plan;
  const std::string mode = args.Get("mode", "closed");
  if (mode != "open" && mode != "closed") return Usage();
  plan.open_loop = mode == "open";
  plan.concurrency = static_cast<size_t>(args.GetUint("concurrency", 4));
  if (plan.concurrency == 0) plan.concurrency = 1;
  plan.qps = args.GetDouble("qps", 1000.0);
  plan.duration_s = args.GetDouble("duration-s", 5.0);
  plan.theta = args.GetDouble("theta", 0.99);
  plan.k = static_cast<size_t>(args.GetUint("k", 10));
  plan.seed = args.GetUint("seed", 1);
  const double warmup_s = args.GetDouble("warmup-s", 0.5);
  const size_t repeats = static_cast<size_t>(args.GetUint("repeats", 3));
  const uint64_t min_requests = args.GetUint("min-requests", 1);
  if (plan.theta < 0.0 || plan.theta >= 1.0) {
    std::fprintf(stderr, "--theta must be in [0, 1)\n");
    return 2;
  }

  // The dataset defines the user universe and relation names in both
  // modes (HTTP targets serve a model over the same generated dataset).
  auto data = MakePaperDataset(args.Get("dataset", "taobao"),
                               args.GetDouble("scale", 1.0),
                               args.GetUint("dataset-seed", 7));
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::vector<NodeId> users;
  for (NodeId v = 0; v < data.value().num_nodes(); ++v) {
    if (data.value().node_types[v] == data.value().query_type) {
      users.push_back(v);
    }
  }
  if (users.empty()) {
    std::fprintf(stderr, "dataset has no query-type nodes\n");
    return 1;
  }
  const std::string relation_text = args.Get("relation", "");
  if (relation_text.empty()) {
    plan.relation = data.value().target_relations[0];
  } else if (auto id = ParseUint(relation_text); id.ok()) {
    plan.relation = static_cast<EdgeTypeId>(id.value());
  } else if (auto named = data.value().schema.EdgeType(relation_text);
             named.ok()) {
    plan.relation = named.value();
  } else {
    std::fprintf(stderr, "unknown relation: %s\n", relation_text.c_str());
    return 2;
  }

  // Build the client: HTTP against --target, else in-process engine over
  // a restored checkpoint.
  std::unique_ptr<Client> client;
  std::unique_ptr<SupaModel> model;
  std::unique_ptr<serve::ServeEngine> engine;
  std::string target = args.Get("target", "");
  if (!target.empty()) {
    if (target.rfind("http://", 0) == 0) target = target.substr(7);
    const size_t colon = target.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "--target needs host:port\n");
      return 2;
    }
    std::string host = target.substr(0, colon);
    const uint16_t port = static_cast<uint16_t>(
        std::strtoul(target.c_str() + colon + 1, nullptr, 10));
    const size_t slash = host.find('/');
    if (slash != std::string::npos) host.resize(slash);
    client = std::make_unique<HttpClient>(host, port);
  } else {
    SupaConfig config;
    config.dim = static_cast<int>(args.GetUint("dim", 64));
    config.seed = args.GetUint("model-seed", 42);
    config.shards = static_cast<size_t>(args.GetUint("shards", 0));
    auto split = SplitTemporal(data.value()).value();
    model = std::make_unique<SupaModel>(data.value(), config);
    for (size_t i = split.train.begin; i < split.train.end; ++i) {
      if (Status st = model->ObserveEdge(data.value().edges[i]); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    if (Status st = LoadCheckpoint(args.Get("checkpoint", "supa_model.bin"),
                                   model.get());
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    serve::ServeOptions serve_options;
    serve_options.workers =
        static_cast<size_t>(args.GetUint("serve-workers", 2));
    engine = std::make_unique<serve::ServeEngine>(model.get(), &data.value(),
                                                  serve_options);
    engine->Start();
    client = std::make_unique<InprocClient>(engine.get());
  }

  serve::ServeReport report("serve_load", mode);
  report.AddConfig("dataset", data.value().name);
  report.AddConfig("transport", target.empty() ? "inproc" : "http");
  report.AddConfig("concurrency", static_cast<double>(plan.concurrency));
  if (plan.open_loop) report.AddConfig("qps_target", plan.qps);
  report.AddConfig("duration_s", plan.duration_s);
  report.AddConfig("theta", plan.theta);
  report.AddConfig("k", static_cast<double>(plan.k));
  report.AddConfig("relation",
                   data.value().schema.EdgeTypeName(plan.relation));
  report.AddConfig("users", static_cast<double>(users.size()));
  report.AddConfig("seed", static_cast<double>(plan.seed));

  if (warmup_s > 0.0) {
    LoadPlan warm = plan;
    warm.duration_s = warmup_s;
    RunRepeat(client.get(), warm, users, /*repeat_index=*/~0ull,
              /*record=*/false);
  }

  uint64_t total_requests = 0;
  bool all_served = true;
  for (size_t r = 0; r < repeats; ++r) {
    const serve::RepeatSummary s =
        RunRepeat(client.get(), plan, users, r, /*record=*/true);
    report.AddRepeat(s);
    total_requests += s.requests;
    if (s.requests == 0) all_served = false;
    std::printf(
        "repeat %zu/%zu: %llu ok, %llu err | qps %.1f | p50 %.1fus "
        "p95 %.1fus p99 %.1fus max %.1fus\n",
        r + 1, repeats, static_cast<unsigned long long>(s.requests),
        static_cast<unsigned long long>(s.errors), s.qps, s.p50_us, s.p95_us,
        s.p99_us, s.max_us);
  }
  if (client->max_staleness() > 0) {
    report.AddConfig("max_staleness_edges",
                     static_cast<double>(client->max_staleness()));
  }

  if (engine != nullptr) engine->Stop();

  const std::string json_out = args.Get("json-out", "");
  if (!json_out.empty()) {
    if (Status st = report.WriteFile(json_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "report -> %s\n", json_out.c_str());
  }

  if (!all_served || total_requests < min_requests) {
    std::fprintf(stderr,
                 "FAILED: %llu requests succeeded (need >= %llu, every "
                 "repeat > 0)\n",
                 static_cast<unsigned long long>(total_requests),
                 static_cast<unsigned long long>(min_requests));
    return 1;
  }
  std::printf("total: %llu requests ok\n",
              static_cast<unsigned long long>(total_requests));
  return 0;
}

}  // namespace
}  // namespace supa

int main(int argc, char** argv) { return supa::Main(argc, argv); }
