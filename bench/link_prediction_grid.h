// Shared driver for Tables V and VI: train every method on every paper
// dataset (80/1/19 temporal split), repeat across seeds, and evaluate the
// ranking metrics. SUPA rows are starred when a Welch t-test over the
// seeded repetitions shows p < 0.01 against the best baseline, matching
// the papers' significance marks.

#ifndef SUPA_BENCH_LINK_PREDICTION_GRID_H_
#define SUPA_BENCH_LINK_PREDICTION_GRID_H_

#include <functional>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "eval/stats.h"
#include "util/timer.h"

namespace supa::bench {

/// One (method, dataset) cell with per-seed metric samples.
struct GridCell {
  std::string method;
  std::string dataset;
  std::vector<double> hit20;
  std::vector<double> hit50;
  std::vector<double> ndcg10;
  std::vector<double> mrr;

  double MeanOf(const std::vector<double>& xs) const { return Mean(xs); }
};

/// All six paper dataset names in table order.
inline std::vector<std::string> PaperDatasetNames() {
  return {"UCI", "Amazon", "Last.fm", "MovieLens", "Taobao", "Kuaishou"};
}

/// Runs the full grid. Expensive; runtime scales with methods × datasets ×
/// env.seeds.
inline Result<std::vector<GridCell>> RunLinkPredictionGrid(
    const std::vector<std::string>& methods, const BenchEnv& env) {
  std::vector<GridCell> cells;
  for (const std::string& dataset_name : PaperDatasetNames()) {
    for (const std::string& method : methods) {
      GridCell cell;
      cell.method = method;
      cell.dataset = dataset_name;
      for (size_t seed = 0; seed < env.seeds; ++seed) {
        // The dataset is regenerated identically across methods for a
        // given seed, so comparisons are paired.
        SUPA_ASSIGN_OR_RETURN(
            Dataset data,
            MakePaperDataset(dataset_name, env.scale, 100 + seed));
        SUPA_ASSIGN_OR_RETURN(TemporalSplit split, SplitTemporal(data));

        RegistryOptions options;
        options.dim = 64;
        options.seed = 1000 + seed * 17;
        options.effort = env.effort;
        SUPA_ASSIGN_OR_RETURN(auto model, MakeRecommender(method, options));
        Timer timer;
        SUPA_RETURN_NOT_OK(model->Fit(data, split.train));

        EvalConfig eval;
        eval.max_test_edges = env.test_edges;
        eval.seed = 7 + seed;
        SUPA_ASSIGN_OR_RETURN(
            RankingResult r,
            EvaluateLinkPrediction(*model, data, split.test,
                                   EdgeRange{0, split.valid.end}, eval));
        cell.hit20.push_back(r.hit20);
        cell.hit50.push_back(r.hit50);
        cell.ndcg10.push_back(r.ndcg10);
        cell.mrr.push_back(r.mrr);
        SUPA_LOG(INFO) << dataset_name << " / " << method << " seed " << seed
                       << ": H@50=" << r.hit50 << " MRR=" << r.mrr << " ("
                       << Fmt(timer.ElapsedSeconds(), 1) << "s)";
      }
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

/// Extractor for one metric column of a cell.
using MetricFn = std::function<const std::vector<double>&(const GridCell&)>;

/// True when SUPA's samples beat the best baseline's samples on this
/// dataset at p < 0.01 (one-sided Welch). Requires >= 2 seeds.
inline bool SupaSignificantlyBest(const std::vector<GridCell>& cells,
                                  const std::string& dataset,
                                  const MetricFn& metric) {
  const GridCell* supa = nullptr;
  const GridCell* best_baseline = nullptr;
  for (const auto& cell : cells) {
    if (cell.dataset != dataset) continue;
    if (cell.method == "SUPA") {
      supa = &cell;
    } else if (best_baseline == nullptr ||
               Mean(metric(cell)) > Mean(metric(*best_baseline))) {
      best_baseline = &cell;
    }
  }
  if (supa == nullptr || best_baseline == nullptr) return false;
  if (metric(*supa).size() < 2) return false;
  auto test = WelchTTest(metric(*supa), metric(*best_baseline));
  return test.ok() && test.value().p_greater < 0.01;
}

/// "0.1234" or "0.1234*" for starred SUPA cells.
inline std::string MetricCell(const std::vector<GridCell>& cells,
                              const GridCell& cell, const MetricFn& metric,
                              bool maybe_star) {
  std::string text = Fmt(Mean(metric(cell)));
  if (maybe_star && cell.method == "SUPA" &&
      SupaSignificantlyBest(cells, cell.dataset, metric)) {
    text += "*";
  }
  return text;
}

}  // namespace supa::bench

#endif  // SUPA_BENCH_LINK_PREDICTION_GRID_H_
