// Reproduces Table VII: the contribution of the three losses (keep-one and
// drop-one variants of L_inter, L_prop, L_neg), the InsLearn ablation
// (SUPA_w/oIns trains with a conventional multi-epoch workflow), and full
// SUPA — H@50 and MRR on all six datasets.

#include "bench/supa_variant_run.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  const std::vector<std::string> variants = {
      "Linter", "Lprop", "Lneg", "woLinter", "woLprop", "woLneg",
      "woIns",  "full"};
  const std::vector<std::string> datasets = {"UCI",       "Amazon", "Last.fm",
                                             "MovieLens", "Taobao", "Kuaishou"};

  Report report("Table VII — loss and InsLearn ablation (H@50 / MRR)");
  std::vector<std::string> header = {"Variant"};
  for (const auto& ds : datasets) {
    header.push_back(ds + " H@50");
    header.push_back(ds + " MRR");
  }
  report.SetHeader(header);

  // Row-major over variants, generating each dataset once.
  std::vector<std::vector<std::string>> rows(variants.size());
  for (size_t v = 0; v < variants.size(); ++v) rows[v] = {"SUPA_" + variants[v]};

  for (const auto& ds : datasets) {
    auto data_or = MakePaperDataset(ds, env.scale, 100);
    if (!data_or.ok()) {
      std::fprintf(stderr, "dataset %s failed: %s\n", ds.c_str(),
                   data_or.status().ToString().c_str());
      return 1;
    }
    for (size_t v = 0; v < variants.size(); ++v) {
      auto r = RunSupaVariant(data_or.value(), variants[v], env);
      if (!r.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", variants[v].c_str(),
                     ds.c_str(), r.status().ToString().c_str());
        return 1;
      }
      rows[v].push_back(Fmt(r.value().hit50));
      rows[v].push_back(Fmt(r.value().mrr));
      SUPA_LOG(INFO) << "table7: " << ds << " / " << variants[v]
                     << " H@50=" << r.value().hit50;
    }
  }
  for (auto& row : rows) report.AddRow(std::move(row));
  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
