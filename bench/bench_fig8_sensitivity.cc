// Reproduces Figure 8: parameter sensitivity of SUPA. Panels (a)-(e) sweep
// the GNN hyper-parameters (embedding size d, walks k, walk length l,
// negatives N_neg, filter threshold τ via its g(τ) value); panels (f)-(j)
// sweep the InsLearn workflow parameters (N_iter, I_valid, S_valid,
// patience μ, S_batch). The paper runs UCI, Last.fm and Taobao; we default
// to UCI and Taobao to bound single-core runtime (Last.fm behaves alike —
// add it with SUPA_BENCH_FIG8_ALL=1).

#include <functional>

#include "bench/bench_common.h"
#include "baselines/recommender.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "util/math_utils.h"

namespace {

using supa::Dataset;
using supa::EdgeRange;
using supa::EvalConfig;
using supa::InsLearnConfig;
using supa::SupaConfig;
using supa::SupaRecommender;

/// One panel: a parameter name, its sweep values, and how a value mutates
/// the two configs.
struct Panel {
  std::string name;
  std::vector<double> values;
  std::function<void(double, SupaConfig&, InsLearnConfig&)> apply;
};

double RunOne(const Dataset& data, const SupaConfig& mc,
              const InsLearnConfig& tc, size_t test_edges) {
  auto split = supa::SplitTemporal(data).value();
  SupaRecommender model(mc, tc);
  if (!model.Fit(data, split.train).ok()) return -1.0;
  EvalConfig eval;
  eval.max_test_edges = test_edges;
  auto r = supa::EvaluateLinkPrediction(model, data, split.test,
                                        EdgeRange{0, split.valid.end}, eval);
  return r.ok() ? r.value().hit50 : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  std::vector<std::string> dataset_names = {"UCI", "Taobao"};
  if (EnvDouble("SUPA_BENCH_FIG8_ALL", 0.0) > 0.0) {
    dataset_names = {"UCI", "Last.fm", "Taobao"};
  }

  const std::vector<Panel> panels = {
      {"(a) d", {16, 32, 64, 128},
       [](double v, SupaConfig& m, InsLearnConfig&) {
         m.dim = static_cast<int>(v);
       }},
      {"(b) k", {1, 2, 4, 8},
       [](double v, SupaConfig& m, InsLearnConfig&) {
         m.num_walks = static_cast<int>(v);
       }},
      {"(c) l", {2, 3, 5, 7},
       [](double v, SupaConfig& m, InsLearnConfig&) {
         m.walk_len = static_cast<int>(v);
       }},
      {"(d) N_neg", {1, 3, 5, 7},
       [](double v, SupaConfig& m, InsLearnConfig&) {
         m.num_neg = static_cast<int>(v);
       }},
      {"(e) g(tau)", {0.1, 0.2, 0.3, 0.5},
       [](double v, SupaConfig& m, InsLearnConfig&) {
         m.tau = TauFromDecayValue(v);
       }},
      {"(f) N_iter", {2, 4, 8, 16},
       [](double v, SupaConfig&, InsLearnConfig& t) {
         t.max_iters = static_cast<int>(v);
       }},
      {"(g) I_valid", {2, 4, 8, 16},
       [](double v, SupaConfig&, InsLearnConfig& t) {
         t.valid_interval = static_cast<int>(v);
       }},
      {"(h) S_valid", {50, 100, 150, 200},
       [](double v, SupaConfig&, InsLearnConfig& t) {
         t.valid_size = static_cast<size_t>(v);
       }},
      {"(i) mu", {1, 2, 3, 5},
       [](double v, SupaConfig&, InsLearnConfig& t) {
         t.patience = static_cast<int>(v);
       }},
      {"(j) S_batch", {16, 32, 256, 1024, 4096},
       [](double v, SupaConfig&, InsLearnConfig& t) {
         t.batch_size = static_cast<size_t>(v);
       }},
  };

  Report report("Figure 8 — parameter sensitivity (H@50)");
  std::vector<std::string> header = {"panel", "value"};
  for (const auto& name : dataset_names) header.push_back(name);
  report.SetHeader(header);

  std::vector<Dataset> datasets;
  for (const auto& name : dataset_names) {
    auto d = MakePaperDataset(name, env.scale, 100);
    if (!d.ok()) {
      std::fprintf(stderr, "dataset %s failed\n", name.c_str());
      return 1;
    }
    datasets.push_back(std::move(d).value());
  }

  for (const auto& panel : panels) {
    for (double value : panel.values) {
      std::vector<std::string> row = {panel.name, Fmt(value, 2)};
      for (const auto& data : datasets) {
        SupaConfig mc;
        mc.dim = 64;
        InsLearnConfig tc;
        tc.max_iters = std::max(1, static_cast<int>(8 * env.effort));
        tc.valid_interval = 4;
        panel.apply(value, mc, tc);
        row.push_back(Fmt(RunOne(data, mc, tc, env.test_edges)));
      }
      report.AddRow(std::move(row));
      SUPA_LOG(INFO) << "fig8: " << panel.name << " = " << value;
    }
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
