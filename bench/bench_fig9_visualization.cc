// Reproduces Figure 9: embedding visualization of user-item pairs on
// Taobao. 20 test user-item pairs are sampled, each method's embeddings of
// the 40 nodes are projected to 2-D with t-SNE, and the mean distance d̄
// between the paired user and item points is averaged over repetitions —
// smaller d̄ means the method embeds true pairs closer (what the paper
// shows qualitatively as "short gray lines").

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "eval/tsne.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  const size_t repetitions = std::max<size_t>(
      1, EnvSize("SUPA_BENCH_FIG9_REPS", 10));
  constexpr size_t kPairs = 20;
  const std::vector<std::string> methods = {
      "node2vec", "GATNE", "LightGCN", "MF-BPR", "EvolveGCN", "SUPA"};

  auto data_or = MakeTaobao(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  auto split = SplitTemporal(data).value();

  Report report("Figure 9 — t-SNE mean user-item pair distance d̄ (lower "
                "is better)");
  report.SetHeader({"Method", "mean_pair_distance", "reps"});

  for (const auto& method : methods) {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender(method, options);
    if (!model.ok() || !model.value()->Fit(data, split.train).ok()) {
      std::fprintf(stderr, "%s failed to fit\n", method.c_str());
      return 1;
    }

    double dbar_sum = 0.0;
    size_t dbar_count = 0;
    for (size_t rep = 0; rep < repetitions; ++rep) {
      // Sample 20 test user-item pairs (target relations only).
      Rng rng(500 + rep);
      std::vector<std::pair<NodeId, NodeId>> pairs;
      for (int attempt = 0; attempt < 4000 && pairs.size() < kPairs;
           ++attempt) {
        const size_t i =
            split.test.begin + rng.Index(split.test.size());
        const auto& e = data.edges[i];
        if (!data.IsTargetRelation(e.type)) continue;
        pairs.emplace_back(e.src, e.dst);
      }
      if (pairs.size() < kPairs) continue;

      // Collect the 40 node embeddings (user then item per pair).
      std::vector<float> points;
      size_t dim = 0;
      bool ok = true;
      for (const auto& [u, v] : pairs) {
        for (NodeId node : {u, v}) {
          auto emb = model.value()->Embedding(node, data.target_relations[0]);
          if (!emb.ok()) {
            ok = false;
            break;
          }
          dim = emb.value().size();
          points.insert(points.end(), emb.value().begin(),
                        emb.value().end());
        }
        if (!ok) break;
      }
      if (!ok) continue;

      TsneConfig tsne;
      tsne.seed = 900 + rep;
      auto layout = RunTsne(points, 2 * kPairs, dim, tsne);
      if (!layout.ok()) continue;
      std::vector<std::pair<size_t, size_t>> index_pairs;
      for (size_t p = 0; p < kPairs; ++p) {
        index_pairs.emplace_back(2 * p, 2 * p + 1);
      }
      dbar_sum += MeanPairDistance(layout.value(), index_pairs);
      ++dbar_count;
    }
    report.AddRow({method,
                   dbar_count > 0 ? Fmt(dbar_sum / dbar_count, 3) : "n/a",
                   std::to_string(dbar_count)});
    SUPA_LOG(INFO) << "fig9: finished " << method;
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
