// Shared plumbing for the table/figure reproduction harnesses: environment
// knobs, fixed-width table printing, and TSV report output.
//
// Environment variables honored by every harness:
//   SUPA_BENCH_SCALE       dataset size multiplier (default 1.0)
//   SUPA_BENCH_EFFORT      training effort multiplier (default 1.0)
//   SUPA_BENCH_TEST_EDGES  test cases per evaluation (default 300)
//   SUPA_BENCH_SEEDS       repetitions for significance tests (default 3)
//   SUPA_BENCH_THREADS     eval worker threads (default 0 = all cores;
//                          results are thread-count invariant)
// Command line:
//   --out <path>           additionally write the rows as TSV

#ifndef SUPA_BENCH_BENCH_COMMON_H_
#define SUPA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/tsv.h"

namespace supa::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = ParseDouble(v);
  return parsed.ok() ? parsed.value() : fallback;
}

inline size_t EnvSize(const char* name, size_t fallback) {
  return static_cast<size_t>(
      EnvDouble(name, static_cast<double>(fallback)));
}

/// The standard knobs, read once per harness.
struct BenchEnv {
  double scale = EnvDouble("SUPA_BENCH_SCALE", 1.0);
  double effort = EnvDouble("SUPA_BENCH_EFFORT", 1.0);
  size_t test_edges = EnvSize("SUPA_BENCH_TEST_EDGES", 300);
  size_t seeds = EnvSize("SUPA_BENCH_SEEDS", 2);
  size_t threads = EnvSize("SUPA_BENCH_THREADS", 0);
};

/// Accumulates rows, prints an aligned text table, optionally writes TSV.
class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Prints the table to stdout.
  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string>& row) {
      if (widths.size() < row.size()) widths.resize(row.size(), 0);
      for (size_t i = 0; i < row.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

  /// Writes header + rows as TSV when `path` is non-empty.
  void MaybeWriteTsv(const std::string& path) const {
    if (path.empty()) return;
    std::vector<std::vector<std::string>> all;
    all.push_back(header_);
    for (const auto& row : rows_) all.push_back(row);
    Status st = WriteTsv(path, all);
    if (!st.ok()) {
      SUPA_LOG(ERROR) << "failed to write " << path << ": " << st.ToString();
    } else {
      std::printf("(wrote %s)\n", path.c_str());
    }
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses `--out <path>` from argv; empty when absent.
inline std::string OutPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") return argv[i + 1];
  }
  return "";
}

/// Fixed-precision formatting for metric cells.
inline std::string Fmt(double x, int digits = 4) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace supa::bench

#endif  // SUPA_BENCH_BENCH_COMMON_H_
