// Shared plumbing for the table/figure reproduction harnesses: environment
// knobs, fixed-width table printing, and TSV report output.
//
// Environment variables honored by every harness:
//   SUPA_BENCH_SCALE       dataset size multiplier (default 1.0)
//   SUPA_BENCH_EFFORT      training effort multiplier (default 1.0)
//   SUPA_BENCH_TEST_EDGES  test cases per evaluation (default 300)
//   SUPA_BENCH_SEEDS       repetitions for significance tests (default 3)
//   SUPA_BENCH_REPEATS     timing repeats per perf metric, emitted as the
//                          "samples" arrays bench_compare consumes
//                          (default 3)
//   SUPA_BENCH_THREADS     eval worker threads (default 0 = all cores;
//                          results are thread-count invariant)
//   SUPA_SHARDS            storage-engine shard count (default 1), read by
//                          the library itself; placement only — metrics,
//                          bench tables, and checkpoint bytes are
//                          bit-identical at every value
//   SUPA_METRICS_OUT       write a metrics-registry JSON snapshot here at
//                          process exit
//   SUPA_TRACE_OUT         enable trace spans and write Chrome trace JSON
//                          here at process exit
//   SUPA_PERF_OUT          enable hardware-counter profiling and write the
//                          per-domain profile JSON here at process exit
//   SUPA_MODEL_OUT         enable the model monitor and write its report
//                          JSON (sketch quantiles, drift, alerts) here at
//                          process exit
//   SUPA_ADMIN_PORT        serve /metrics /healthz /statusz /tracez
//                          /profilez /modelz on
//                          127.0.0.1 at this port for the whole run
//                          (0 = ephemeral; the bound port is printed to
//                          stderr)
// Command line:
//   --out <path>           additionally write the rows as TSV
//   --json-out <path>      additionally write the rows as JSON

#ifndef SUPA_BENCH_BENCH_COMMON_H_
#define SUPA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/admin_server.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/tsv.h"

namespace supa::bench {

inline double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  auto parsed = ParseDouble(v);
  return parsed.ok() ? parsed.value() : fallback;
}

inline size_t EnvSize(const char* name, size_t fallback) {
  return static_cast<size_t>(
      EnvDouble(name, static_cast<double>(fallback)));
}

/// Honors SUPA_METRICS_OUT / SUPA_TRACE_OUT / SUPA_ADMIN_PORT: enables
/// tracing when a trace path is set, starts the HTTP admin server when a
/// port is set, and installs one atexit hook that writes the exports when
/// the harness ends (normal return or std::exit). Idempotent, so every
/// BenchEnv construction may call it.
inline void InitObservabilityFromEnv() {
  static const bool installed = [] {
    if (const char* port_text = std::getenv("SUPA_ADMIN_PORT")) {
      auto port = ParseUint(port_text);
      if (port.ok() && port.value() <= 65535) {
        obs::AdminServerOptions options;
        options.port = static_cast<uint16_t>(port.value());
        // Leaked on purpose: serves until process exit, and everything it
        // reads (metrics / trace / status registries) is a leaked
        // singleton too.
        auto* admin = new obs::AdminServer(options);
        std::string error;
        if (admin->Start(&error)) {
          std::fprintf(stderr,
                       "admin server listening on http://127.0.0.1:%u\n",
                       admin->port());
        } else {
          std::fprintf(stderr, "admin server failed to start: %s\n",
                       error.c_str());
        }
      } else {
        std::fprintf(stderr, "bad SUPA_ADMIN_PORT: %s\n", port_text);
      }
    }
    const bool want_metrics = std::getenv("SUPA_METRICS_OUT") != nullptr;
    const bool want_trace = std::getenv("SUPA_TRACE_OUT") != nullptr;
    const bool want_perf = std::getenv("SUPA_PERF_OUT") != nullptr;
    const bool want_model = std::getenv("SUPA_MODEL_OUT") != nullptr;
    if (want_trace) obs::TraceRecorder::Global().Enable(true);
    if (want_perf) obs::PerfProfiler::Global().Enable(true);
    if (want_model) obs::ModelMonitor::Global().Enable(true);
    if (!want_metrics && !want_trace && !want_perf && !want_model) {
      return false;
    }
    std::atexit([] {
      std::string error;
      if (const char* path = std::getenv("SUPA_TRACE_OUT")) {
        obs::TraceRecorder::Global().Enable(false);
        if (obs::TraceRecorder::Global().WriteJson(path, &error)) {
          std::fprintf(stderr, "(wrote trace %s)\n", path);
        } else {
          std::fprintf(stderr, "failed to write trace %s: %s\n", path,
                       error.c_str());
        }
      }
      if (const char* path = std::getenv("SUPA_PERF_OUT")) {
        obs::PerfProfiler::Global().Enable(false);
        if (obs::WritePerfJson(obs::MetricsRegistry::Global(), path,
                               &error)) {
          std::fprintf(stderr, "(wrote perf profile %s)\n", path);
        } else {
          std::fprintf(stderr, "failed to write perf profile %s: %s\n",
                       path, error.c_str());
        }
      }
      if (const char* path = std::getenv("SUPA_MODEL_OUT")) {
        obs::ModelMonitor::Global().Enable(false);
        if (obs::WriteModelJson(path, &error)) {
          std::fprintf(stderr, "(wrote model report %s)\n", path);
        } else {
          std::fprintf(stderr, "failed to write model report %s: %s\n",
                       path, error.c_str());
        }
      }
      if (const char* path = std::getenv("SUPA_METRICS_OUT")) {
        if (obs::WriteMetricsJson(obs::MetricsRegistry::Global(), path,
                                  &error)) {
          std::fprintf(stderr, "(wrote metrics %s)\n", path);
        } else {
          std::fprintf(stderr, "failed to write metrics %s: %s\n", path,
                       error.c_str());
        }
      }
    });
    return true;
  }();
  (void)installed;
}

/// The standard knobs, read once per harness. Constructing the env also
/// arms the observability exports above — every harness constructs one, so
/// SUPA_METRICS_OUT / SUPA_TRACE_OUT work across the whole bench suite.
struct BenchEnv {
  BenchEnv() { InitObservabilityFromEnv(); }

  double scale = EnvDouble("SUPA_BENCH_SCALE", 1.0);
  double effort = EnvDouble("SUPA_BENCH_EFFORT", 1.0);
  size_t test_edges = EnvSize("SUPA_BENCH_TEST_EDGES", 300);
  size_t seeds = EnvSize("SUPA_BENCH_SEEDS", 2);
  size_t repeats = EnvSize("SUPA_BENCH_REPEATS", 3);
  size_t threads = EnvSize("SUPA_BENCH_THREADS", 0);
};

/// Accumulates rows, prints an aligned text table, optionally writes TSV.
class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void SetHeader(std::vector<std::string> header) {
    header_ = std::move(header);
  }

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  const std::string& title() const { return title_; }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Prints the table to stdout.
  void Print() const {
    std::printf("\n== %s ==\n", title_.c_str());
    std::vector<size_t> widths;
    auto widen = [&](const std::vector<std::string>& row) {
      if (widths.size() < row.size()) widths.resize(row.size(), 0);
      for (size_t i = 0; i < row.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    for (const auto& row : rows_) print_row(row);
    std::fflush(stdout);
  }

  /// Writes header + rows as TSV when `path` is non-empty.
  void MaybeWriteTsv(const std::string& path) const {
    if (path.empty()) return;
    std::vector<std::vector<std::string>> all;
    all.push_back(header_);
    for (const auto& row : rows_) all.push_back(row);
    Status st = WriteTsv(path, all);
    if (!st.ok()) {
      SUPA_LOG(ERROR) << "failed to write " << path << ": " << st.ToString();
    } else {
      std::printf("(wrote %s)\n", path.c_str());
    }
  }

  /// Writes the table as JSON when `path` is non-empty:
  /// {"title": ..., "header": [...], "rows": [[...], ...]}. Cells stay
  /// strings — the report layer formats, consumers parse what they need.
  void MaybeWriteJson(const std::string& path) const {
    if (path.empty()) return;
    obs::JsonWriter w;
    w.BeginObject();
    w.Field("title", title_);
    w.Key("header").BeginArray();
    for (const auto& cell : header_) w.String(cell);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : rows_) {
      w.BeginArray();
      for (const auto& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    std::string error;
    if (!obs::WriteTextFile(path, w.str(), &error)) {
      SUPA_LOG(ERROR) << "failed to write " << path << ": " << error;
    } else {
      std::printf("(wrote %s)\n", path.c_str());
    }
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses `--<flag> <path>` from argv; empty when absent.
inline std::string FlagPath(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return argv[i + 1];
  }
  return "";
}

/// Parses `--out <path>` from argv; empty when absent.
inline std::string OutPath(int argc, char** argv) {
  return FlagPath(argc, argv, "--out");
}

/// Parses `--json-out <path>` from argv; empty when absent.
inline std::string JsonOutPath(int argc, char** argv) {
  return FlagPath(argc, argv, "--json-out");
}

/// Fixed-precision formatting for metric cells.
inline std::string Fmt(double x, int digits = 4) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, x);
  return buf;
}

}  // namespace supa::bench

#endif  // SUPA_BENCH_BENCH_COMMON_H_
