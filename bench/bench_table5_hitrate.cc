// Reproduces Table V: link-prediction hit rate (H@20, H@50) for every
// method on every dataset. Rows are methods, column pairs are datasets, as
// in the paper; a '*' on a SUPA cell marks p < 0.01 (one-sided Welch
// t-test vs the best baseline) when SUPA_BENCH_SEEDS >= 2.

#include "bench/link_prediction_grid.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto cells_or = RunLinkPredictionGrid(AllMethodNames(), env);
  if (!cells_or.ok()) {
    std::fprintf(stderr, "table5 failed: %s\n",
                 cells_or.status().ToString().c_str());
    return 1;
  }
  const auto& cells = cells_or.value();

  Report report("Table V — link prediction hit rate");
  std::vector<std::string> header = {"Method"};
  for (const auto& ds : PaperDatasetNames()) {
    header.push_back(ds + " H@20");
    header.push_back(ds + " H@50");
  }
  report.SetHeader(header);

  MetricFn h20 = [](const GridCell& c) -> const std::vector<double>& {
    return c.hit20;
  };
  MetricFn h50 = [](const GridCell& c) -> const std::vector<double>& {
    return c.hit50;
  };

  for (const auto& method : AllMethodNames()) {
    std::vector<std::string> row = {method};
    for (const auto& ds : PaperDatasetNames()) {
      for (const auto& cell : cells) {
        if (cell.method == method && cell.dataset == ds) {
          row.push_back(MetricCell(cells, cell, h20, env.seeds >= 2));
          row.push_back(MetricCell(cells, cell, h50, env.seeds >= 2));
        }
      }
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
