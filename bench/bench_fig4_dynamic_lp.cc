// Reproduces Figure 4: dynamic link prediction on MovieLens. The stream is
// cut into 10 equal parts; each method (re)trains on part i and is
// evaluated on part i+1. Static methods retrain from scratch; dynamic
// methods (SUPA, EvolveGCN, DyGNN) train incrementally.

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/protocols.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  constexpr size_t kParts = 10;

  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  Report h50_report("Figure 4 (top) — dynamic link prediction H@50 per step");
  Report mrr_report("Figure 4 (bottom) — dynamic link prediction MRR per step");
  std::vector<std::string> header = {"Method"};
  for (size_t s = 1; s < kParts; ++s) {
    header.push_back("step" + std::to_string(s));
  }
  h50_report.SetHeader(header);
  mrr_report.SetHeader(header);

  for (const auto& method : StrongBaselineNames()) {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender(method, options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    auto steps = RunDynamicProtocol(*model.value(), data, kParts, eval);
    if (!steps.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   steps.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> h50_row = {method};
    std::vector<std::string> mrr_row = {method};
    for (const auto& s : steps.value()) {
      h50_row.push_back(Fmt(s.hit50));
      mrr_row.push_back(Fmt(s.mrr));
    }
    h50_report.AddRow(std::move(h50_row));
    mrr_report.AddRow(std::move(mrr_row));
    SUPA_LOG(INFO) << "fig4: finished " << method;
  }

  h50_report.Print();
  mrr_report.Print();
  h50_report.MaybeWriteTsv(OutPath(argc, argv));
  h50_report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
