// Reproduces Table VIII: the benefit of modeling multiplex heterogeneity
// (SUPA_sn shared α, SUPA_se shared context, SUPA_s both) and streaming
// dynamics (SUPA_nf no short-term memory, SUPA_nd no propagation decay,
// SUPA_nt no time components) on Taobao and Kuaishou.

#include "bench/supa_variant_run.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  const std::vector<std::string> variants = {"sn", "se", "s",
                                             "nf", "nd", "nt", "full"};
  const std::vector<std::string> datasets = {"Taobao", "Kuaishou"};

  Report report(
      "Table VIII — heterogeneity & dynamics ablation (H@50 / MRR)");
  std::vector<std::string> header = {"Variant"};
  for (const auto& ds : datasets) {
    header.push_back(ds + " H@50");
    header.push_back(ds + " MRR");
  }
  report.SetHeader(header);

  std::vector<std::vector<std::string>> rows(variants.size());
  for (size_t v = 0; v < variants.size(); ++v) {
    rows[v] = {variants[v] == "full" ? "SUPA" : "SUPA_" + variants[v]};
  }

  for (const auto& ds : datasets) {
    auto data_or = MakePaperDataset(ds, env.scale, 100);
    if (!data_or.ok()) {
      std::fprintf(stderr, "dataset %s failed: %s\n", ds.c_str(),
                   data_or.status().ToString().c_str());
      return 1;
    }
    for (size_t v = 0; v < variants.size(); ++v) {
      auto r = RunSupaVariant(data_or.value(), variants[v], env);
      if (!r.ok()) {
        std::fprintf(stderr, "%s on %s failed: %s\n", variants[v].c_str(),
                     ds.c_str(), r.status().ToString().c_str());
        return 1;
      }
      rows[v].push_back(Fmt(r.value().hit50));
      rows[v].push_back(Fmt(r.value().mrr));
      SUPA_LOG(INFO) << "table8: " << ds << " / " << variants[v]
                     << " H@50=" << r.value().hit50;
    }
  }
  for (auto& row : rows) report.AddRow(std::move(row));
  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
