// Reproduces Figure 5: total running time (train + evaluate, summed over
// the 9 dynamic-link-prediction steps of Figure 4) per method on
// MovieLens. The paper's claim is the *ordering*: SUPA trains a stream
// faster than retrain-from-scratch baselines of comparable quality.

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "core/inslearn.h"
#include "core/model.h"
#include "data/synthetic.h"
#include "dur/checkpoint.h"
#include "dur/delta_writer.h"
#include "dur/wal.h"
#include "eval/protocols.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

struct MethodRuntime {
  std::string method;
  double train_s = 0.0;
  double eval_s = 0.0;
};

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  constexpr size_t kParts = 10;

  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  Report report("Figure 5 — total running time of dynamic link prediction");
  report.SetHeader({"Method", "train_s", "eval_s", "total_s"});
  std::vector<MethodRuntime> method_runtimes;

  for (const auto& method : StrongBaselineNames()) {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender(method, options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    eval.threads = env.threads;
    auto steps = RunDynamicProtocol(*model.value(), data, kParts, eval);
    if (!steps.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   steps.status().ToString().c_str());
      return 1;
    }
    double train_s = 0.0;
    double eval_s = 0.0;
    for (const auto& s : steps.value()) {
      train_s += s.train_seconds;
      eval_s += s.eval_seconds;
    }
    report.AddRow({method, Fmt(train_s, 2), Fmt(eval_s, 2),
                   Fmt(train_s + eval_s, 2)});
    method_runtimes.push_back({method, train_s, eval_s});
    SUPA_LOG(INFO) << "fig5: finished " << method;
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));

  // SUPA per-phase runtime breakdown + snapshot-path comparison, emitted as
  // BENCH_fig5.json so dashboards and CI can track edges/sec without
  // scraping tables. The same InsLearn workload runs once with O(dirty)
  // delta snapshots and once with full-buffer snapshots; results are
  // bit-identical (asserted by tests), so the runtime delta is pure
  // snapshot-path cost.
  {
    auto run_inslearn = [&](bool use_delta, InsLearnReport* out) -> double {
      SupaConfig mc;
      mc.dim = 64;
      SupaModel model(data, mc);
      InsLearnConfig tc;
      tc.threads = env.threads;
      tc.valid_interval = 2;  // snapshot-heavy: validate every 2 iterations
      tc.use_delta_snapshots = use_delta;
      InsLearnTrainer trainer(tc);
      const size_t n_edges = data.edges.size();
      Timer timer;
      auto r = trainer.Train(model, data, EdgeRange{0, n_edges});
      const double wall_s = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "inslearn failed: %s\n",
                     r.status().ToString().c_str());
        return -1.0;
      }
      *out = r.value();
      return wall_s;
    };

    InsLearnReport delta_report, full_report;
    // Registry deltas across the first delta-snapshot run expose the
    // snapshot machinery's behavior (re-bases, O(dirty) restores vs
    // full-copy fallbacks) without the trainer having to thread them
    // through its report.
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    const double delta_wall_s = run_inslearn(true, &delta_report);
    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::Global().Snapshot();
    if (delta_wall_s < 0.0) return 1;

    // Per-repeat timing samples of the identical delta-snapshot workload.
    // bench_compare Welch-tests these arrays between two reports, so every
    // run carries its own noise estimate. Repeat 1 is the run above.
    const size_t repeats = std::max<size_t>(1, env.repeats);
    std::vector<double> wall_samples = {delta_wall_s};
    std::vector<double> eps_samples = {
        static_cast<double>(data.edges.size()) / delta_wall_s};
    std::vector<double> sps_samples = {
        delta_report.train_seconds > 0.0
            ? static_cast<double>(delta_report.train_steps) /
                  delta_report.train_seconds
            : 0.0};
    for (size_t rep = 1; rep < repeats; ++rep) {
      InsLearnReport r;
      const double wall_s = run_inslearn(true, &r);
      if (wall_s < 0.0) return 1;
      wall_samples.push_back(wall_s);
      eps_samples.push_back(static_cast<double>(data.edges.size()) / wall_s);
      sps_samples.push_back(
          r.train_seconds > 0.0
              ? static_cast<double>(r.train_steps) / r.train_seconds
              : 0.0);
    }

    const double full_wall_s = run_inslearn(false, &full_report);
    if (full_wall_s < 0.0) return 1;
    auto counter_delta = [&](const char* name) {
      return after.CounterValue(name) - before.CounterValue(name);
    };

    // Hardware-profiled repeats of the same workload, kept separate from
    // the timing repeats above so the wall_s/edges_per_sec samples stay
    // comparable with unprofiled baselines. Every tier of the degradation
    // ladder emits the same schema (all-zero ratios on PMU-less hosts);
    // "perf.source" below names the tier so readers know which.
    constexpr const char* kPerfPhases[] = {"sample", "update", "propagate",
                                           "negative", "optimize"};
    constexpr size_t kNumPerfPhases = 5;
    struct PhasePerfSamples {
      std::vector<double> llc_miss_rate;
      std::vector<double> ipc;
      std::vector<double> cycles_per_edge;
      uint64_t cycles = 0, instructions = 0;
      uint64_t llc_loads = 0, llc_misses = 0, scopes = 0;
    };
    PhasePerfSamples phase_perf[kNumPerfPhases];
    // Model-quality samples ride the profiled repeats: the monitor resets
    // per repeat, so each sample is one full training run's mean. Training
    // is bit-identical with the monitor on (pinned by tests), so these are
    // the same runs the perf counters see.
    std::vector<double> loss_samples, grad_norm_samples, mrr_samples;
    obs::ModelMonitorSnapshot model_snapshot;
    obs::PerfProfiler::Global().Enable(true);
    obs::ModelMonitor::Global().Enable(true);
    for (size_t rep = 0; rep < repeats; ++rep) {
      obs::ModelMonitor::Global().Reset();
      const obs::MetricsSnapshot perf_before =
          obs::MetricsRegistry::Global().Snapshot();
      InsLearnReport r;
      if (run_inslearn(true, &r) < 0.0) return 1;
      const obs::MetricsSnapshot perf_after =
          obs::MetricsRegistry::Global().Snapshot();
      model_snapshot = obs::ModelMonitor::Global().Snapshot();
      loss_samples.push_back(model_snapshot.train_loss.Mean());
      grad_norm_samples.push_back(model_snapshot.grad_norm.Mean());
      double mrr_sum = 0.0;
      for (double s : r.batch_scores) mrr_sum += s;
      mrr_samples.push_back(
          r.batch_scores.empty() ? 0.0
                                 : mrr_sum / r.batch_scores.size());
      for (size_t p = 0; p < kNumPerfPhases; ++p) {
        auto delta = [&](const char* slot) {
          const std::string name =
              std::string("perf.") + kPerfPhases[p] + "." + slot;
          return perf_after.CounterValue(name) -
                 perf_before.CounterValue(name);
        };
        const uint64_t cycles = delta("cycles");
        const uint64_t instructions = delta("instructions");
        const uint64_t loads = delta("llc_loads");
        const uint64_t misses = delta("llc_misses");
        const uint64_t scopes = delta("scopes");
        PhasePerfSamples& s = phase_perf[p];
        s.llc_miss_rate.push_back(
            loads > 0 ? static_cast<double>(misses) / loads : 0.0);
        s.ipc.push_back(
            cycles > 0 ? static_cast<double>(instructions) / cycles : 0.0);
        s.cycles_per_edge.push_back(
            scopes > 0 ? static_cast<double>(cycles) / scopes : 0.0);
        s.cycles += cycles;
        s.instructions += instructions;
        s.llc_loads += loads;
        s.llc_misses += misses;
        s.scopes += scopes;
      }
    }
    obs::ModelMonitor::Global().Enable(false);
    obs::PerfProfiler::Global().Enable(false);

    const size_t n_edges = data.edges.size();
    const double edges_per_sec =
        delta_wall_s > 0.0 ? static_cast<double>(n_edges) / delta_wall_s : 0.0;
    const double steps_per_sec =
        delta_report.train_seconds > 0.0
            ? static_cast<double>(delta_report.train_steps) /
                  delta_report.train_seconds
            : 0.0;
    const double snapshot_speedup =
        delta_report.snapshot_seconds > 0.0
            ? full_report.snapshot_seconds / delta_report.snapshot_seconds
            : 0.0;

    Report phases("Figure 5c — SUPA InsLearn per-phase runtime");
    phases.SetHeader({"snapshots", "wall_s", "train_s", "valid_s",
                      "snapshot_s", "observe_s", "edges/s"});
    phases.AddRow({"delta", Fmt(delta_wall_s, 2),
                   Fmt(delta_report.train_seconds, 2),
                   Fmt(delta_report.valid_seconds, 2),
                   Fmt(delta_report.snapshot_seconds, 4),
                   Fmt(delta_report.observe_seconds, 2),
                   Fmt(edges_per_sec, 0)});
    phases.AddRow({"full", Fmt(full_wall_s, 2),
                   Fmt(full_report.train_seconds, 2),
                   Fmt(full_report.valid_seconds, 2),
                   Fmt(full_report.snapshot_seconds, 4),
                   Fmt(full_report.observe_seconds, 2), ""});
    phases.Print();
    std::printf("(snapshot-path speedup: %.2fx)\n", snapshot_speedup);

    // Isolated snapshot-operation timings at a validation-interval-sized
    // dirty set (one 32-edge burst between snapshots — the Algorithm 1
    // cadence). The end-to-end numbers above fold re-bases in; these
    // measure the take/restore operations themselves.
    double take_full_s = 0.0, take_delta_s = 0.0;
    double restore_full_s = 0.0, restore_delta_s = 0.0;
    int reps = 0;
    {
      SupaConfig mc;
      mc.dim = 64;
      SupaModel model(data, mc);
      const size_t warm = std::min<size_t>(data.edges.size(), 2000);
      for (size_t i = 0; i < warm; ++i) {
        (void)model.TrainEdge(data.edges[i]);
        (void)model.ObserveEdge(data.edges[i]);
      }
      SupaModel::DeltaSnapshot delta = model.TakeDeltaSnapshot();
      auto burst = [&](size_t at) {
        for (size_t j = 0; j < 32; ++j) {
          (void)model.TrainEdge(data.edges[(at + j) % warm]);
        }
      };
      Timer op;
      for (reps = 0; reps < 30; ++reps) {
        burst(static_cast<size_t>(reps) * 32);
        op.Reset();
        SupaModel::DeltaSnapshot d = model.TakeDeltaSnapshot();
        take_delta_s += op.ElapsedSeconds();
        (void)d;
        op.Reset();
        model.RestoreDeltaSnapshot(delta);
        restore_delta_s += op.ElapsedSeconds();

        burst(static_cast<size_t>(reps) * 32 + 7);
        op.Reset();
        SupaModel::Snapshot f = model.TakeSnapshot();
        take_full_s += op.ElapsedSeconds();
        op.Reset();
        model.RestoreSnapshot(f);
        restore_full_s += op.ElapsedSeconds();
        // RestoreSnapshot dropped the delta baseline; re-establish it
        // outside the timed regions.
        delta = model.TakeDeltaSnapshot();
      }
    }
    const double take_speedup =
        take_delta_s > 0.0 ? take_full_s / take_delta_s : 0.0;
    const double restore_speedup =
        restore_delta_s > 0.0 ? restore_full_s / restore_delta_s : 0.0;
    std::printf(
        "(snapshot ops over %d reps: take full %.3fms / delta %.3fms = "
        "%.1fx; restore full %.3fms / delta %.3fms = %.1fx)\n",
        reps, 1e3 * take_full_s / reps, 1e3 * take_delta_s / reps,
        take_speedup, 1e3 * restore_full_s / reps,
        1e3 * restore_delta_s / reps, restore_speedup);

    // Durability checkpoint ops (DESIGN.md §16): WAL append throughput per
    // fsync policy, and the delta chain's capture / compact / restore
    // costs. The two capture sizes pin the O(dirty-rows) claim — the
    // large burst dirties more rows and must cost proportionally more,
    // while the full base gather pays O(|params|) regardless.
    std::vector<double> wal_off_samples, wal_every_samples;
    std::vector<double> take_small_samples, take_large_samples;
    std::vector<double> base_gather_samples, compact_samples,
        chain_restore_samples;
    uint64_t delta_small_rows = 0, delta_large_rows = 0;
    {
      namespace fs = std::filesystem;
      const std::string opdir = "bench_checkpoint_ops.tmp";
      std::error_code ec;
      fs::remove_all(opdir, ec);
      fs::create_directories(opdir, ec);
      SupaConfig mc;
      mc.dim = 64;
      SupaModel model(data, mc);
      const size_t warm = std::min<size_t>(data.edges.size(), 2000);
      for (size_t i = 0; i < warm; ++i) {
        (void)model.TrainEdge(data.edges[i]);
        (void)model.ObserveEdge(data.edges[i]);
      }
      model.optimizer().set_checkpoint_tracking(true);
      auto burst = [&](size_t at, size_t count) {
        for (size_t j = 0; j < count; ++j) {
          (void)model.TrainEdge(data.edges[(at + j) % warm]);
        }
      };
      auto capture_after = [&](size_t at, size_t count, double* out_ms) {
        model.optimizer().ClearCheckpointDirty();
        burst(at, count);
        Timer t;
        auto delta = dur::CaptureDirtyRows(model);
        *out_ms = 1e3 * t.ElapsedSeconds();
        return delta;
      };

      // An 8-delta chain, in memory and on disk, for the compact/restore
      // measurements below.
      const dur::LogicalCheckpoint chain_base = dur::GatherLogicalState(model);
      std::vector<dur::DeltaCapture> chain;
      std::vector<std::string> chain_files;
      Status chain_st = dur::WriteBaseFile(opdir + "/chain.base", chain_base);
      for (int d = 0; d < 8 && chain_st.ok(); ++d) {
        double unused = 0.0;
        auto delta = capture_after(97 * static_cast<size_t>(d), 64, &unused);
        if (!delta.ok()) {
          chain_st = delta.status();
          break;
        }
        const std::string file =
            opdir + "/chain" + std::to_string(d) + ".delta";
        chain_st = dur::WriteDeltaFile(file, delta.value());
        chain.push_back(std::move(delta).value());
        chain_files.push_back(file);
      }
      if (!chain_st.ok()) {
        std::fprintf(stderr, "checkpoint_ops setup failed: %s\n",
                     chain_st.ToString().c_str());
        return 1;
      }

      for (size_t rep = 0; rep < repeats; ++rep) {
        // WAL append throughput, unsynced and fdatasync-per-record.
        const struct {
          dur::WalSync sync;
          size_t appends;
          std::vector<double>* out;
        } wal_runs[] = {{dur::WalSync::kOff, 4096, &wal_off_samples},
                        {dur::WalSync::kEvery, 64, &wal_every_samples}};
        for (const auto& run : wal_runs) {
          const std::string waldir = opdir + "/wal";
          fs::remove_all(waldir, ec);
          dur::WalOptions wo;
          wo.sync = run.sync;
          auto writer = dur::WalWriter::Open(waldir, wo, 0);
          if (!writer.ok()) {
            std::fprintf(stderr, "wal bench failed: %s\n",
                         writer.status().ToString().c_str());
            return 1;
          }
          dur::WalRecord rec;
          Timer t;
          for (size_t k = 0; k < run.appends; ++k) {
            rec.edge = data.edges[k % warm];
            (void)writer.value()->Append(rec);
          }
          (void)writer.value()->Close();
          run.out->push_back(static_cast<double>(run.appends) /
                             t.ElapsedSeconds());
        }

        double ms = 0.0;
        auto small = capture_after(31 * rep, 32, &ms);
        if (!small.ok()) return 1;
        take_small_samples.push_back(ms);
        delta_small_rows = small.value().num_rows();
        auto large = capture_after(53 * rep, 256, &ms);
        if (!large.ok()) return 1;
        take_large_samples.push_back(ms);
        delta_large_rows = large.value().num_rows();

        Timer t;
        const dur::LogicalCheckpoint full = dur::GatherLogicalState(model);
        base_gather_samples.push_back(1e3 * t.ElapsedSeconds());

        // Compact: fold the 8-delta chain into a copy of its base.
        t.Reset();
        dur::LogicalCheckpoint folded = chain_base;
        for (const auto& dlt : chain) (void)dur::ApplyDelta(dlt, &folded);
        compact_samples.push_back(1e3 * t.ElapsedSeconds());

        // Restore: materialise the same chain from disk.
        t.Reset();
        auto restored = dur::ReadBaseFile(opdir + "/chain.base");
        if (!restored.ok()) {
          std::fprintf(stderr, "chain restore failed: %s\n",
                       restored.status().ToString().c_str());
          return 1;
        }
        for (const std::string& file : chain_files) {
          auto dlt = dur::ReadDeltaFile(file);
          if (!dlt.ok()) return 1;
          (void)dur::ApplyDelta(dlt.value(), &restored.value());
        }
        chain_restore_samples.push_back(1e3 * t.ElapsedSeconds());
      }
      fs::remove_all(opdir, ec);
    }
    std::printf(
        "(checkpoint ops: wal append %.0f/s unsynced, %.0f/s synced; delta "
        "take %.3fms @%llu rows vs %.3fms @%llu rows; base gather %.3fms; "
        "compact %.3fms; chain restore %.3fms)\n",
        Mean(wal_off_samples), Mean(wal_every_samples),
        Mean(take_small_samples),
        static_cast<unsigned long long>(delta_small_rows),
        Mean(take_large_samples),
        static_cast<unsigned long long>(delta_large_rows),
        Mean(base_gather_samples), Mean(compact_samples),
        Mean(chain_restore_samples));

    obs::JsonWriter w;
    w.BeginObject();
    w.Field("dataset", "MovieLens");
    w.Field("scale", env.scale);
    w.Field("simd_backend", std::string_view(simd::BackendName()));
    w.Field("repeats", static_cast<uint64_t>(repeats));
    // Schema consumed by tools/bench_compare: one array of per-repeat
    // measurements per perf metric.
    w.Key("samples").BeginObject();
    auto sample_array = [&w](const char* name,
                             const std::vector<double>& xs) {
      w.Key(name).BeginArray();
      for (double x : xs) w.Double(x);
      w.EndArray();
    };
    sample_array("edges_per_sec", eps_samples);
    sample_array("train_steps_per_sec", sps_samples);
    sample_array("wall_s", wall_samples);
    // Model-quality samples (one per profiled repeat). bench_compare
    // knows the gate direction from the suffix: *_loss and *_grad_norm
    // regress upward, *_mrr regresses downward — a quality regression
    // gates even when wall_s is unchanged.
    sample_array("train_loss", loss_samples);
    sample_array("train_grad_norm", grad_norm_samples);
    sample_array("valid_mrr", mrr_samples);
    // Durability-path samples: *_per_sec gates downward regressions in
    // WAL append throughput, *_ms gates upward regressions in the delta
    // chain's capture / compact / restore costs.
    sample_array("wal_append_off_per_sec", wal_off_samples);
    sample_array("wal_append_every_per_sec", wal_every_samples);
    sample_array("ckpt_delta_take_small_ms", take_small_samples);
    sample_array("ckpt_delta_take_large_ms", take_large_samples);
    sample_array("ckpt_base_gather_ms", base_gather_samples);
    sample_array("ckpt_compact_ms", compact_samples);
    sample_array("ckpt_chain_restore_ms", chain_restore_samples);
    // Hardware-profile samples, one array per phase x derived metric. On
    // PMU-less hosts the ladder emits all-zero arrays under the same
    // names, so baseline/candidate schemas always line up.
    for (size_t p = 0; p < kNumPerfPhases; ++p) {
      const std::string prefix = std::string("phase_") + kPerfPhases[p];
      sample_array((prefix + "_llc_miss_rate").c_str(),
                   phase_perf[p].llc_miss_rate);
      sample_array((prefix + "_ipc").c_str(), phase_perf[p].ipc);
      sample_array((prefix + "_cycles_per_edge").c_str(),
                   phase_perf[p].cycles_per_edge);
    }
    w.EndObject();
    // Which rung of the degradation ladder produced the perf samples,
    // plus raw per-phase totals summed over the profiled repeats.
    w.Key("perf").BeginObject();
    w.Field("source", std::string_view(obs::PerfSourceName(
                          obs::PerfProfiler::Global().source())));
    w.Field("profiled_repeats", static_cast<uint64_t>(repeats));
    w.Key("phases").BeginObject();
    for (size_t p = 0; p < kNumPerfPhases; ++p) {
      const PhasePerfSamples& s = phase_perf[p];
      w.Key(kPerfPhases[p]).BeginObject();
      w.Field("scopes", s.scopes);
      w.Field("cycles", s.cycles);
      w.Field("instructions", s.instructions);
      w.Field("llc_loads", s.llc_loads);
      w.Field("llc_misses", s.llc_misses);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
    w.Key("methods").BeginArray();
    for (const MethodRuntime& m : method_runtimes) {
      w.BeginObject();
      w.Field("method", m.method);
      w.Field("train_s", m.train_s);
      w.Field("eval_s", m.eval_s);
      w.Field("total_s", m.train_s + m.eval_s);
      w.EndObject();
    }
    w.EndArray();
    w.Key("supa_inslearn").BeginObject();
    w.Field("edges", static_cast<uint64_t>(n_edges));
    w.Field("train_steps", static_cast<uint64_t>(delta_report.train_steps));
    w.Field("wall_s", delta_wall_s);
    w.Field("edges_per_sec", edges_per_sec);
    w.Field("train_steps_per_sec", steps_per_sec);
    w.Key("phases").BeginObject();
    w.Field("train_s", delta_report.train_seconds);
    w.Field("valid_s", delta_report.valid_seconds);
    w.Field("snapshot_s", delta_report.snapshot_seconds);
    w.Field("observe_s", delta_report.observe_seconds);
    w.EndObject();
    w.Key("snapshot").BeginObject();
    w.Field("delta_s", delta_report.snapshot_seconds);
    w.Field("full_s", full_report.snapshot_seconds);
    w.Field("speedup", snapshot_speedup);
    w.EndObject();
    w.Key("snapshot_ops").BeginObject();
    w.Field("take_full_ms", 1e3 * take_full_s / reps);
    w.Field("take_delta_ms", 1e3 * take_delta_s / reps);
    w.Field("take_speedup", take_speedup);
    w.Field("restore_full_ms", 1e3 * restore_full_s / reps);
    w.Field("restore_delta_ms", 1e3 * restore_delta_s / reps);
    w.Field("restore_speedup", restore_speedup);
    w.EndObject();
    // Durability engine operation costs (means over the sample arrays
    // above; the row counts pin the O(dirty) capture-scaling claim).
    w.Key("checkpoint_ops").BeginObject();
    w.Field("wal_append_off_per_sec", Mean(wal_off_samples));
    w.Field("wal_append_every_per_sec", Mean(wal_every_samples));
    w.Field("delta_take_small_ms", Mean(take_small_samples));
    w.Field("delta_take_small_rows", delta_small_rows);
    w.Field("delta_take_large_ms", Mean(take_large_samples));
    w.Field("delta_take_large_rows", delta_large_rows);
    w.Field("base_gather_ms", Mean(base_gather_samples));
    w.Field("compact_ms", Mean(compact_samples));
    w.Field("chain_restore_ms", Mean(chain_restore_samples));
    w.EndObject();
    // Model-monitor distributions from the last profiled repeat — the
    // point-in-time quality fingerprint behind the sample arrays above.
    w.Key("model").BeginObject();
    w.Field("train_steps", model_snapshot.train_steps);
    w.Field("observed_edges", model_snapshot.observed_edges);
    w.Field("train_loss_p50", model_snapshot.train_loss.Quantile(0.5));
    w.Field("train_loss_p99", model_snapshot.train_loss.Quantile(0.99));
    w.Field("grad_norm_p50", model_snapshot.grad_norm.Quantile(0.5));
    w.Field("grad_norm_p99", model_snapshot.grad_norm.Quantile(0.99));
    w.Field("distinct_users", model_snapshot.distinct_users);
    w.Field("distinct_items", model_snapshot.distinct_items);
    w.Field("new_node_rate", model_snapshot.new_node_rate);
    w.Field("alert_level",
            std::string_view(obs::AlertLevelName(model_snapshot.worst_level)));
    w.EndObject();
    // Registry counter deltas over the delta-snapshot run.
    w.Key("metrics").BeginObject();
    w.Field("snapshot_delta_takes", counter_delta("snapshot.delta_takes"));
    w.Field("snapshot_rebases", counter_delta("snapshot.rebases"));
    w.Field("snapshot_delta_restores",
            counter_delta("snapshot.delta_restores"));
    w.Field("snapshot_fallback_restores",
            counter_delta("snapshot.fallback_restores"));
    w.Field("sampler_walks", counter_delta("sampler.walks"));
    w.Field("sampler_walk_steps", counter_delta("sampler.walk_steps"));
    w.Field("sampler_arena_reuses", counter_delta("sampler.arena_reuses"));
    w.Field("sampler_arena_grows", counter_delta("sampler.arena_grows"));
    w.EndObject();
    w.EndObject();
    w.EndObject();
    const std::string json_path = "BENCH_fig5.json";
    std::string error;
    if (obs::WriteTextFile(json_path, w.str(), &error)) {
      std::printf("(wrote %s)\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s: %s\n", json_path.c_str(),
                   error.c_str());
    }
  }

  // Thread sweep: how much of the evaluation half of the runtime budget
  // parallelism recovers. SUPA is trained once on the temporal train
  // split; the identical evaluation workload is then timed per thread
  // count (metrics are thread-count invariant by construction).
  {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender("SUPA", options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    auto split = SplitTemporal(data).value();
    if (Status st = model.value()->Fit(data, split.train); !st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Report sweep("Figure 5b — SUPA evaluation time vs threads");
    sweep.SetHeader({"threads", "eval_s", "speedup"});
    double serial_s = 0.0;
    for (size_t threads : {1, 2, 4}) {
      EvalConfig eval;
      eval.max_test_edges = env.test_edges * 4;
      eval.threads = threads;
      Timer timer;
      auto r = EvaluateLinkPrediction(*model.value(), data, split.test,
                                      EdgeRange{0, split.valid.end}, eval);
      const double eval_s = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) serial_s = eval_s;
      sweep.AddRow({std::to_string(threads), Fmt(eval_s, 4),
                    Fmt(serial_s / eval_s, 2)});
    }
    sweep.Print();
  }
  return 0;
}
