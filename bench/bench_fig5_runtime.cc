// Reproduces Figure 5: total running time (train + evaluate, summed over
// the 9 dynamic-link-prediction steps of Figure 4) per method on
// MovieLens. The paper's claim is the *ordering*: SUPA trains a stream
// faster than retrain-from-scratch baselines of comparable quality.

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  constexpr size_t kParts = 10;

  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  Report report("Figure 5 — total running time of dynamic link prediction");
  report.SetHeader({"Method", "train_s", "eval_s", "total_s"});

  for (const auto& method : StrongBaselineNames()) {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender(method, options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    eval.threads = env.threads;
    auto steps = RunDynamicProtocol(*model.value(), data, kParts, eval);
    if (!steps.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   steps.status().ToString().c_str());
      return 1;
    }
    double train_s = 0.0;
    double eval_s = 0.0;
    for (const auto& s : steps.value()) {
      train_s += s.train_seconds;
      eval_s += s.eval_seconds;
    }
    report.AddRow({method, Fmt(train_s, 2), Fmt(eval_s, 2),
                   Fmt(train_s + eval_s, 2)});
    SUPA_LOG(INFO) << "fig5: finished " << method;
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));

  // Thread sweep: how much of the evaluation half of the runtime budget
  // parallelism recovers. SUPA is trained once on the temporal train
  // split; the identical evaluation workload is then timed per thread
  // count (metrics are thread-count invariant by construction).
  {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender("SUPA", options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    auto split = SplitTemporal(data).value();
    if (Status st = model.value()->Fit(data, split.train); !st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Report sweep("Figure 5b — SUPA evaluation time vs threads");
    sweep.SetHeader({"threads", "eval_s", "speedup"});
    double serial_s = 0.0;
    for (size_t threads : {1, 2, 4}) {
      EvalConfig eval;
      eval.max_test_edges = env.test_edges * 4;
      eval.threads = threads;
      Timer timer;
      auto r = EvaluateLinkPrediction(*model.value(), data, split.test,
                                      EdgeRange{0, split.valid.end}, eval);
      const double eval_s = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) serial_s = eval_s;
      sweep.AddRow({std::to_string(threads), Fmt(eval_s, 4),
                    Fmt(serial_s / eval_s, 2)});
    }
    sweep.Print();
  }
  return 0;
}
