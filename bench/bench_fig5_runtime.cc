// Reproduces Figure 5: total running time (train + evaluate, summed over
// the 9 dynamic-link-prediction steps of Figure 4) per method on
// MovieLens. The paper's claim is the *ordering*: SUPA trains a stream
// faster than retrain-from-scratch baselines of comparable quality.

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "core/inslearn.h"
#include "core/model.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

/// Minimal JSON value formatting for the machine-readable report; all our
/// keys/strings are plain identifiers, so no escaping is needed.
std::string JsonNum(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", x);
  return buf;
}

struct MethodRuntime {
  std::string method;
  double train_s = 0.0;
  double eval_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  constexpr size_t kParts = 10;

  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  Report report("Figure 5 — total running time of dynamic link prediction");
  report.SetHeader({"Method", "train_s", "eval_s", "total_s"});
  std::vector<MethodRuntime> method_runtimes;

  for (const auto& method : StrongBaselineNames()) {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender(method, options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    eval.threads = env.threads;
    auto steps = RunDynamicProtocol(*model.value(), data, kParts, eval);
    if (!steps.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   steps.status().ToString().c_str());
      return 1;
    }
    double train_s = 0.0;
    double eval_s = 0.0;
    for (const auto& s : steps.value()) {
      train_s += s.train_seconds;
      eval_s += s.eval_seconds;
    }
    report.AddRow({method, Fmt(train_s, 2), Fmt(eval_s, 2),
                   Fmt(train_s + eval_s, 2)});
    method_runtimes.push_back({method, train_s, eval_s});
    SUPA_LOG(INFO) << "fig5: finished " << method;
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));

  // SUPA per-phase runtime breakdown + snapshot-path comparison, emitted as
  // BENCH_fig5.json so dashboards and CI can track edges/sec without
  // scraping tables. The same InsLearn workload runs once with O(dirty)
  // delta snapshots and once with full-buffer snapshots; results are
  // bit-identical (asserted by tests), so the runtime delta is pure
  // snapshot-path cost.
  {
    auto run_inslearn = [&](bool use_delta, InsLearnReport* out) -> double {
      SupaConfig mc;
      mc.dim = 64;
      SupaModel model(data, mc);
      InsLearnConfig tc;
      tc.threads = env.threads;
      tc.valid_interval = 2;  // snapshot-heavy: validate every 2 iterations
      tc.use_delta_snapshots = use_delta;
      InsLearnTrainer trainer(tc);
      const size_t n_edges = data.edges.size();
      Timer timer;
      auto r = trainer.Train(model, data, EdgeRange{0, n_edges});
      const double wall_s = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "inslearn failed: %s\n",
                     r.status().ToString().c_str());
        return -1.0;
      }
      *out = r.value();
      return wall_s;
    };

    InsLearnReport delta_report, full_report;
    const double delta_wall_s = run_inslearn(true, &delta_report);
    const double full_wall_s = run_inslearn(false, &full_report);
    if (delta_wall_s < 0.0 || full_wall_s < 0.0) return 1;

    const size_t n_edges = data.edges.size();
    const double edges_per_sec =
        delta_wall_s > 0.0 ? static_cast<double>(n_edges) / delta_wall_s : 0.0;
    const double steps_per_sec =
        delta_report.train_seconds > 0.0
            ? static_cast<double>(delta_report.train_steps) /
                  delta_report.train_seconds
            : 0.0;
    const double snapshot_speedup =
        delta_report.snapshot_seconds > 0.0
            ? full_report.snapshot_seconds / delta_report.snapshot_seconds
            : 0.0;

    Report phases("Figure 5c — SUPA InsLearn per-phase runtime");
    phases.SetHeader({"snapshots", "wall_s", "train_s", "valid_s",
                      "snapshot_s", "observe_s", "edges/s"});
    phases.AddRow({"delta", Fmt(delta_wall_s, 2),
                   Fmt(delta_report.train_seconds, 2),
                   Fmt(delta_report.valid_seconds, 2),
                   Fmt(delta_report.snapshot_seconds, 4),
                   Fmt(delta_report.observe_seconds, 2),
                   Fmt(edges_per_sec, 0)});
    phases.AddRow({"full", Fmt(full_wall_s, 2),
                   Fmt(full_report.train_seconds, 2),
                   Fmt(full_report.valid_seconds, 2),
                   Fmt(full_report.snapshot_seconds, 4),
                   Fmt(full_report.observe_seconds, 2), ""});
    phases.Print();
    std::printf("(snapshot-path speedup: %.2fx)\n", snapshot_speedup);

    // Isolated snapshot-operation timings at a validation-interval-sized
    // dirty set (one 32-edge burst between snapshots — the Algorithm 1
    // cadence). The end-to-end numbers above fold re-bases in; these
    // measure the take/restore operations themselves.
    double take_full_s = 0.0, take_delta_s = 0.0;
    double restore_full_s = 0.0, restore_delta_s = 0.0;
    int reps = 0;
    {
      SupaConfig mc;
      mc.dim = 64;
      SupaModel model(data, mc);
      const size_t warm = std::min<size_t>(data.edges.size(), 2000);
      for (size_t i = 0; i < warm; ++i) {
        (void)model.TrainEdge(data.edges[i]);
        (void)model.ObserveEdge(data.edges[i]);
      }
      SupaModel::DeltaSnapshot delta = model.TakeDeltaSnapshot();
      auto burst = [&](size_t at) {
        for (size_t j = 0; j < 32; ++j) {
          (void)model.TrainEdge(data.edges[(at + j) % warm]);
        }
      };
      Timer op;
      for (reps = 0; reps < 30; ++reps) {
        burst(static_cast<size_t>(reps) * 32);
        op.Reset();
        SupaModel::DeltaSnapshot d = model.TakeDeltaSnapshot();
        take_delta_s += op.ElapsedSeconds();
        (void)d;
        op.Reset();
        model.RestoreDeltaSnapshot(delta);
        restore_delta_s += op.ElapsedSeconds();

        burst(static_cast<size_t>(reps) * 32 + 7);
        op.Reset();
        SupaModel::Snapshot f = model.TakeSnapshot();
        take_full_s += op.ElapsedSeconds();
        op.Reset();
        model.RestoreSnapshot(f);
        restore_full_s += op.ElapsedSeconds();
        // RestoreSnapshot dropped the delta baseline; re-establish it
        // outside the timed regions.
        delta = model.TakeDeltaSnapshot();
      }
    }
    const double take_speedup =
        take_delta_s > 0.0 ? take_full_s / take_delta_s : 0.0;
    const double restore_speedup =
        restore_delta_s > 0.0 ? restore_full_s / restore_delta_s : 0.0;
    std::printf(
        "(snapshot ops over %d reps: take full %.3fms / delta %.3fms = "
        "%.1fx; restore full %.3fms / delta %.3fms = %.1fx)\n",
        reps, 1e3 * take_full_s / reps, 1e3 * take_delta_s / reps,
        take_speedup, 1e3 * restore_full_s / reps,
        1e3 * restore_delta_s / reps, restore_speedup);

    std::string json = "{\n";
    json += "  \"dataset\": \"MovieLens\",\n";
    json += "  \"scale\": " + JsonNum(env.scale) + ",\n";
    json += "  \"simd_backend\": \"" + std::string(simd::BackendName()) +
            "\",\n";
    json += "  \"methods\": [\n";
    for (size_t i = 0; i < method_runtimes.size(); ++i) {
      const MethodRuntime& m = method_runtimes[i];
      json += "    {\"method\": \"" + m.method +
              "\", \"train_s\": " + JsonNum(m.train_s) +
              ", \"eval_s\": " + JsonNum(m.eval_s) +
              ", \"total_s\": " + JsonNum(m.train_s + m.eval_s) + "}";
      json += (i + 1 < method_runtimes.size()) ? ",\n" : "\n";
    }
    json += "  ],\n";
    json += "  \"supa_inslearn\": {\n";
    json += "    \"edges\": " + std::to_string(n_edges) + ",\n";
    json += "    \"train_steps\": " +
            std::to_string(delta_report.train_steps) + ",\n";
    json += "    \"wall_s\": " + JsonNum(delta_wall_s) + ",\n";
    json += "    \"edges_per_sec\": " + JsonNum(edges_per_sec) + ",\n";
    json += "    \"train_steps_per_sec\": " + JsonNum(steps_per_sec) + ",\n";
    json += "    \"phases\": {\"train_s\": " +
            JsonNum(delta_report.train_seconds) +
            ", \"valid_s\": " + JsonNum(delta_report.valid_seconds) +
            ", \"snapshot_s\": " + JsonNum(delta_report.snapshot_seconds) +
            ", \"observe_s\": " + JsonNum(delta_report.observe_seconds) +
            "},\n";
    json += "    \"snapshot\": {\"delta_s\": " +
            JsonNum(delta_report.snapshot_seconds) +
            ", \"full_s\": " + JsonNum(full_report.snapshot_seconds) +
            ", \"speedup\": " + JsonNum(snapshot_speedup) + "},\n";
    json += "    \"snapshot_ops\": {\"take_full_ms\": " +
            JsonNum(1e3 * take_full_s / reps) +
            ", \"take_delta_ms\": " + JsonNum(1e3 * take_delta_s / reps) +
            ", \"take_speedup\": " + JsonNum(take_speedup) +
            ", \"restore_full_ms\": " + JsonNum(1e3 * restore_full_s / reps) +
            ", \"restore_delta_ms\": " +
            JsonNum(1e3 * restore_delta_s / reps) +
            ", \"restore_speedup\": " + JsonNum(restore_speedup) + "}\n";
    json += "  }\n";
    json += "}\n";
    const char* json_path = "BENCH_fig5.json";
    if (std::FILE* f = std::fopen(json_path, "w")) {
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("(wrote %s)\n", json_path);
    } else {
      std::fprintf(stderr, "failed to write %s\n", json_path);
    }
  }

  // Thread sweep: how much of the evaluation half of the runtime budget
  // parallelism recovers. SUPA is trained once on the temporal train
  // split; the identical evaluation workload is then timed per thread
  // count (metrics are thread-count invariant by construction).
  {
    RegistryOptions options;
    options.dim = 64;
    options.effort = env.effort;
    auto model = MakeRecommender("SUPA", options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
      return 1;
    }
    auto split = SplitTemporal(data).value();
    if (Status st = model.value()->Fit(data, split.train); !st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Report sweep("Figure 5b — SUPA evaluation time vs threads");
    sweep.SetHeader({"threads", "eval_s", "speedup"});
    double serial_s = 0.0;
    for (size_t threads : {1, 2, 4}) {
      EvalConfig eval;
      eval.max_test_edges = env.test_edges * 4;
      eval.threads = threads;
      Timer timer;
      auto r = EvaluateLinkPrediction(*model.value(), data, split.test,
                                      EdgeRange{0, split.valid.end}, eval);
      const double eval_s = timer.ElapsedSeconds();
      if (!r.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) serial_s = eval_s;
      sweep.AddRow({std::to_string(threads), Fmt(eval_s, 4),
                    Fmt(serial_s / eval_s, 2)});
    }
    sweep.Print();
  }
  return 0;
}
