// Train-while-serve benchmark: tail latency of the serving engine while
// InsLearn training mutates the store underneath it.
//
// Each repeat trains one model from scratch while closed-loop client
// threads drive ServeEngine::Recommend for the whole training window.
// Reported per repeat: p50/p95/p99/max service latency, sustained QPS,
// the worst snapshot-staleness a client observed, and the training wall
// time under load. Repeat 0 additionally re-runs the identical training
// with no serving load and asserts the final parameters are bit-identical
// — the non-perturbation contract, checked in the same process that
// measured the load.
//
// Output: aligned table (stdout), optional --out TSV / --json-out
// BENCH_serve_inproc.json whose "samples" arrays (p50_us/p95_us/p99_us/
// qps, lower/higher-is-better by suffix) feed tools/bench_compare.

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/inslearn.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "serve/engine.h"
#include "serve/latency_recorder.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace supa::bench {
namespace {

struct LoadedRun {
  serve::RepeatSummary summary;
  uint64_t max_staleness = 0;
  double train_wall_s = 0.0;
  SupaModel::Snapshot params;
};

/// Trains one fresh model while `clients` closed-loop threads drive the
/// serve engine; with clients == 0 this is the unloaded reference run.
LoadedRun RunOnce(const Dataset& data, const EdgeRange& train_range,
                  size_t repeat, size_t clients, size_t threads) {
  SupaConfig config;
  config.seed = 42;
  SupaModel model(data, config);

  serve::ServeOptions serve_options;
  serve_options.workers = 2;
  serve::ServeEngine engine(&model, &data, serve_options);

  std::vector<serve::LatencyRecorder> latencies(clients);
  std::vector<uint64_t> errors(clients, 0);
  std::atomic<uint64_t> max_staleness{0};
  std::atomic<bool> training_done{false};
  std::vector<std::thread> client_threads;

  // Function scope: the client threads reference this past the spawn block.
  std::vector<NodeId> users;
  for (NodeId v = 0; v < data.num_nodes(); ++v) {
    if (data.node_types[v] == data.query_type) users.push_back(v);
  }

  const auto serve_start = std::chrono::steady_clock::now();
  if (clients > 0) {
    engine.Start();
    for (size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        Rng rng(SplitMix64At(1, repeat * 1000003 + c));
        const FastZipf zipf(users.size(), 0.99);
        serve::RecommendRequest req;
        req.relation = data.target_relations[0];
        req.k = 10;
        serve::RecommendResponse resp;
        while (!training_done.load(std::memory_order_acquire)) {
          req.user = users[zipf.Sample(rng)];
          if (engine.Recommend(req, &resp).ok()) {
            latencies[c].Record(resp.latency_us);
            uint64_t seen = max_staleness.load(std::memory_order_relaxed);
            while (resp.staleness_edges > seen &&
                   !max_staleness.compare_exchange_weak(
                       seen, resp.staleness_edges,
                       std::memory_order_relaxed)) {
            }
          } else {
            ++errors[c];
          }
        }
      });
    }
  }

  InsLearnConfig tc;
  tc.max_iters = static_cast<int>(8 * EnvDouble("SUPA_BENCH_EFFORT", 1.0));
  tc.valid_interval = 4;
  tc.threads = threads;
  InsLearnTrainer trainer(tc);
  const auto train_start = std::chrono::steady_clock::now();
  auto report = trainer.Train(model, data, train_range);
  const double train_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    train_start)
          .count();
  if (!report.ok()) {
    std::fprintf(stderr, "train failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }

  training_done.store(true, std::memory_order_release);
  for (std::thread& t : client_threads) t.join();
  const double serve_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serve_start)
          .count();
  engine.Stop();

  LoadedRun out;
  serve::LatencyRecorder merged;
  uint64_t total_errors = 0;
  for (size_t c = 0; c < clients; ++c) {
    merged.Merge(std::move(latencies[c]));
    total_errors += errors[c];
  }
  out.summary = serve::SummarizeRepeat(&merged, serve_wall_s, total_errors);
  out.max_staleness = max_staleness.load(std::memory_order_relaxed);
  out.train_wall_s = train_wall_s;
  out.params = model.TakeSnapshot();
  return out;
}

int Main(int argc, char** argv) {
  BenchEnv env;
  auto data = MakePaperDataset("taobao", 0.3 * env.scale, 7).value();
  const auto split = SplitTemporal(data).value();
  const size_t clients = 4;

  Report table("Serving under training load (closed loop, 4 clients)");
  table.SetHeader({"repeat", "requests", "errors", "qps", "p50_us", "p95_us",
                   "p99_us", "max_us", "max_stale", "train_s"});

  serve::ServeReport json_report("serve_train_while_serve", "closed");
  json_report.AddConfig("dataset", data.name);
  json_report.AddConfig("transport", "inproc");
  json_report.AddConfig("concurrency", static_cast<double>(clients));
  json_report.AddConfig("theta", 0.99);
  json_report.AddConfig("k", 10.0);

  for (size_t r = 0; r < env.repeats; ++r) {
    LoadedRun loaded =
        RunOnce(data, split.train, r, clients, env.threads);
    json_report.AddRepeat(loaded.summary);
    table.AddRow({std::to_string(r), std::to_string(loaded.summary.requests),
                  std::to_string(loaded.summary.errors),
                  Fmt(loaded.summary.qps, 1), Fmt(loaded.summary.p50_us, 1),
                  Fmt(loaded.summary.p95_us, 1),
                  Fmt(loaded.summary.p99_us, 1),
                  Fmt(loaded.summary.max_us, 1),
                  std::to_string(loaded.max_staleness),
                  Fmt(loaded.train_wall_s, 2)});

    if (r == 0) {
      // Non-perturbation check: the identical training with zero serving
      // load must land on bit-identical parameters.
      LoadedRun unloaded =
          RunOnce(data, split.train, r, /*clients=*/0, env.threads);
      const bool identical =
          loaded.params.params.size() == unloaded.params.params.size() &&
          std::memcmp(loaded.params.params.data(),
                      unloaded.params.params.data(),
                      loaded.params.params.size() * sizeof(float)) == 0;
      if (!identical) {
        std::fprintf(stderr,
                     "FAILED: serving load perturbed training parameters\n");
        return 1;
      }
      std::printf("bit-identity: loaded vs unloaded params identical "
                  "(%zu floats)\n",
                  loaded.params.params.size());
    }
  }

  table.Print();
  table.MaybeWriteTsv(OutPath(argc, argv));
  const std::string json_out = JsonOutPath(argc, argv);
  if (!json_out.empty()) {
    if (Status st = json_report.WriteFile(json_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("(wrote %s)\n", json_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace supa::bench

int main(int argc, char** argv) { return supa::bench::Main(argc, argv); }
