// Helper shared by the ablation harnesses (Tables VII and VIII): train a
// named SUPA variant on a dataset's 80/1/19 split and return H@50 + MRR.

#ifndef SUPA_BENCH_SUPA_VARIANT_RUN_H_
#define SUPA_BENCH_SUPA_VARIANT_RUN_H_

#include <string>

#include "baselines/recommender.h"
#include "bench/bench_common.h"
#include "core/variants.h"
#include "data/synthetic.h"
#include "eval/protocols.h"

namespace supa::bench {

struct VariantResult {
  double hit50 = 0.0;
  double mrr = 0.0;
};

/// Trains SUPA under `variant` ("full", loss/hetero variants, or "woIns"
/// for the conventional training workflow) and evaluates link prediction.
inline Result<VariantResult> RunSupaVariant(const Dataset& data,
                                            const std::string& variant,
                                            const BenchEnv& env,
                                            uint64_t seed = 1) {
  SupaConfig model_config;
  model_config.dim = 64;
  model_config.seed = 1000 + seed;
  InsLearnConfig train_config;
  train_config.max_iters =
      std::max(1, static_cast<int>(8 * env.effort));
  train_config.valid_interval = 4;
  train_config.seed = seed + 5;
  // The whole point of Table VII's last rows is single-pass vs
  // conventional training, so the static-graph auto-fallback must not
  // silently convert "full" into "woIns" on Amazon.
  train_config.auto_static_fallback = false;

  std::string model_variant = variant;
  if (variant == "woIns") {
    model_variant = "full";
    train_config.single_pass = false;
    train_config.full_pass_epochs =
        std::max(1, static_cast<int>(4 * env.effort));
  }
  SUPA_ASSIGN_OR_RETURN(SupaConfig config,
                        ApplyVariant(model_config, model_variant));

  SUPA_ASSIGN_OR_RETURN(TemporalSplit split, SplitTemporal(data));
  SupaRecommender model(config, train_config, "SUPA_" + variant);
  SUPA_RETURN_NOT_OK(model.Fit(data, split.train));

  EvalConfig eval;
  eval.max_test_edges = env.test_edges;
  eval.seed = 7 + seed;
  SUPA_ASSIGN_OR_RETURN(
      RankingResult r,
      EvaluateLinkPrediction(model, data, split.test,
                             EdgeRange{0, split.valid.end}, eval));
  return VariantResult{r.hit50, r.mrr};
}

}  // namespace supa::bench

#endif  // SUPA_BENCH_SUPA_VARIANT_RUN_H_
