// google-benchmark micro-op suite for SUPA's hot paths: per-edge training,
// influenced-graph sampling, scoring, graph appends, and the sparse
// optimizer — the operations whose costs compose the O((kl + N_neg)·|E|)
// training complexity of §III-F.2.

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/inslearn.h"
#include "core/model.h"
#include "data/synthetic.h"
#include "dur/checkpoint.h"
#include "dur/delta_writer.h"
#include "dur/wal.h"
#include "obs/metrics.h"
#include "obs/model_monitor.h"
#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/simd.h"

namespace supa {
namespace {

const Dataset& BenchData() {
  static const Dataset data = MakeTaobao(0.5, 77).value();
  return data;
}

SupaConfig BenchConfig(int dim = 64) {
  SupaConfig c;
  c.dim = dim;
  c.num_walks = 4;
  c.walk_len = 3;
  c.num_neg = 5;
  return c;
}

std::unique_ptr<SupaModel> WarmModel(const SupaConfig& config,
                                     size_t warm_edges) {
  const Dataset& data = BenchData();
  auto model = std::make_unique<SupaModel>(data, config);
  for (size_t i = 0; i < warm_edges && i < data.edges.size(); ++i) {
    (void)model->ObserveEdge(data.edges[i]);
  }
  return model;
}

void BM_TrainEdge(benchmark::State& state) {
  const Dataset& data = BenchData();
  SupaConfig config = BenchConfig(static_cast<int>(state.range(0)));
  auto model = WarmModel(config, 5000);
  size_t i = 5000;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(model->TrainEdge(e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEdge)->Arg(32)->Arg(64)->Arg(128);

void BM_InfluencedGraphSampling(benchmark::State& state) {
  const Dataset& data = BenchData();
  SupaConfig config = BenchConfig();
  config.num_walks = static_cast<int>(state.range(0));
  auto model = WarmModel(config, 5000);
  InfluencedGraphSampler sampler(model->graph(), data.metapaths,
                                 config.num_walks, config.walk_len);
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(sampler.Sample(e.src, e.dst, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InfluencedGraphSampling)->Arg(1)->Arg(4)->Arg(16);

void BM_Score(benchmark::State& state) {
  auto model = WarmModel(BenchConfig(), 5000);
  const Dataset& data = BenchData();
  Rng rng(2);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Index(data.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Index(data.num_nodes()));
    benchmark::DoNotOptimize(model->Score(u, v, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Score);

void BM_ObserveEdge(benchmark::State& state) {
  const Dataset& data = BenchData();
  std::unique_ptr<SupaModel> model;
  size_t i = 0;
  for (auto _ : state) {
    if (i == 0 || i >= data.edges.size()) {
      state.PauseTiming();
      model = std::make_unique<SupaModel>(data, BenchConfig());
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(model->ObserveEdge(data.edges[i++]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserveEdge);

void BM_AdamStepRows(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  std::vector<float> params(rows * dim, 0.1f);
  SparseAdam adam(params.size(), 3e-3, 1e-4);
  GradBuffer grads;
  std::vector<float> grad_row(dim, 0.01f);
  for (auto _ : state) {
    grads.Clear();
    for (size_t r = 0; r < rows; ++r) {
      grads.Accumulate(r * dim, dim, 1.0, grad_row.data());
    }
    adam.Step(grads, params.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AdamStepRows)->Arg(4)->Arg(16)->Arg(64);

// ---- SIMD kernels: dispatched (avx2 where available) vs portable ---------

std::vector<float> KernelVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

void BM_SimdDot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = KernelVec(n, 1), b = KernelVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_SimdDot)->Arg(32)->Arg(64)->Arg(128);

void BM_PortableDot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto a = KernelVec(n, 1), b = KernelVec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::portable::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PortableDot)->Arg(32)->Arg(64)->Arg(128);

void BM_SimdAxpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = KernelVec(n, 3);
  auto y = KernelVec(n, 4);
  for (auto _ : state) {
    simd::Axpy(0.37, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_SimdAxpy)->Arg(32)->Arg(64)->Arg(128);

void BM_PortableAxpy(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto x = KernelVec(n, 3);
  auto y = KernelVec(n, 4);
  for (auto _ : state) {
    simd::portable::Axpy(0.37, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PortableAxpy)->Arg(32)->Arg(64)->Arg(128);

void BM_SimdScoreDot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto al = KernelVec(n, 5), as = KernelVec(n, 6), ac = KernelVec(n, 7),
             bl = KernelVec(n, 8), bs = KernelVec(n, 9), bc = KernelVec(n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::ScoreDot(al.data(), as.data(), ac.data(),
                                            bl.data(), bs.data(), bc.data(),
                                            1.0, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(simd::BackendName());
}
BENCHMARK(BM_SimdScoreDot)->Arg(32)->Arg(64)->Arg(128);

// ---- GradBuffer: flat open-addressing table under training-like load -----

void BM_GradBufferAccumulate(benchmark::State& state) {
  // One training step's shape: `rows` distinct rows, each accumulated
  // twice (influenced node + negative duplicate), then cleared.
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  GradBuffer grads;
  std::vector<float> grad_row(dim, 0.01f);
  for (auto _ : state) {
    grads.Clear();
    for (size_t r = 0; r < rows; ++r) {
      grads.Accumulate(r * dim * 3, dim, 1.0, grad_row.data());
    }
    for (size_t r = 0; r < rows; ++r) {
      grads.Accumulate(r * dim * 3, dim, -0.5, grad_row.data());
    }
    benchmark::DoNotOptimize(grads.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * rows * 2);
}
BENCHMARK(BM_GradBufferAccumulate)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ---- Influenced-graph sampling: per-Walk heap vectors vs flat arena ------

void BM_InfluencedGraphSamplingArena(benchmark::State& state) {
  const Dataset& data = BenchData();
  SupaConfig config = BenchConfig();
  config.num_walks = static_cast<int>(state.range(0));
  auto model = WarmModel(config, 5000);
  InfluencedGraphSampler sampler(model->graph(), data.metapaths,
                                 config.num_walks, config.walk_len);
  Rng rng(1);
  WalkBuffer arena;
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    size_t u_count = 0;
    sampler.SampleInto(e.src, e.dst, rng, &arena, &u_count);
    benchmark::DoNotOptimize(arena.num_steps());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InfluencedGraphSamplingArena)->Arg(1)->Arg(4)->Arg(16);

// ---- Snapshots: full-buffer copy vs O(dirty) delta -----------------------

std::unique_ptr<SupaModel> TrainedModel(size_t train_edges) {
  const Dataset& data = BenchData();
  auto model = std::make_unique<SupaModel>(data, BenchConfig());
  for (size_t i = 0; i < train_edges && i < data.edges.size(); ++i) {
    (void)model->TrainEdge(data.edges[i]);
    (void)model->ObserveEdge(data.edges[i]);
  }
  return model;
}

/// Dirties a validation-interval's worth of rows between snapshots.
void TrainBurst(SupaModel& model, size_t begin, size_t count) {
  const Dataset& data = BenchData();
  for (size_t i = begin; i < begin + count && i < data.edges.size(); ++i) {
    (void)model.TrainEdge(data.edges[i]);
  }
}

void BM_TakeFullSnapshot(benchmark::State& state) {
  auto model = TrainedModel(2000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->TakeSnapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TakeFullSnapshot);

void BM_TakeDeltaSnapshot(benchmark::State& state) {
  auto model = TrainedModel(2000);
  (void)model->TakeDeltaSnapshot();  // establish the baseline outside timing
  size_t i = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    TrainBurst(*model, 2000 + (i++ % 2000), 32);
    state.ResumeTiming();
    benchmark::DoNotOptimize(model->TakeDeltaSnapshot());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TakeDeltaSnapshot);

void BM_RestoreFullSnapshot(benchmark::State& state) {
  auto model = TrainedModel(2000);
  const SupaModel::Snapshot snap = model->TakeSnapshot();
  size_t i = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    TrainBurst(*model, 2000 + (i++ % 2000), 32);
    state.ResumeTiming();
    model->RestoreSnapshot(snap);
    benchmark::DoNotOptimize(model->store().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestoreFullSnapshot);

void BM_RestoreDeltaSnapshot(benchmark::State& state) {
  auto model = TrainedModel(2000);
  const SupaModel::DeltaSnapshot snap = model->TakeDeltaSnapshot();
  size_t i = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    TrainBurst(*model, 2000 + (i++ % 2000), 32);
    state.ResumeTiming();
    model->RestoreDeltaSnapshot(snap);
    benchmark::DoNotOptimize(model->store().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestoreDeltaSnapshot);

// ---- Observability overhead ----------------------------------------------
//
// BM_TrainEdge above runs with tracing runtime-disabled, so comparing it
// against the instrumentation-free seed (or an SUPA_OBS_TRACING=OFF build)
// bounds the disabled-path cost; the acceptance budget is < 2% per edge.
// The benches below price the primitives themselves.

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter c =
      obs::MetricsRegistry::Global().GetCounter("bench.obs_counter");
  for (auto _ : state) {
    c.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::Histogram h = obs::MetricsRegistry::Global().GetHistogram(
      "bench.obs_hist", obs::MetricsRegistry::ExponentialBounds(1.0, 4.0, 10));
  double v = 0.0;
  for (auto _ : state) {
    h.Observe(v);
    v = v < 1e6 ? v * 1.1 + 1.0 : 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Enable(false);
  for (auto _ : state) {
    SUPA_TRACE_SPAN("bench_span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::TraceRecorder::Global().Enable(true);
  for (auto _ : state) {
    SUPA_TRACE_SPAN("bench_span");
    benchmark::ClobberMemory();
  }
  obs::TraceRecorder::Global().Enable(false);
  obs::TraceRecorder::Global().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_TrainEdgeTraced(benchmark::State& state) {
  // BM_TrainEdge's dim-64 workload with tracing runtime-ENABLED; the gap
  // to BM_TrainEdge/64 is the full per-edge recording cost (6 spans).
  const Dataset& data = BenchData();
  auto model = WarmModel(BenchConfig(64), 5000);
  obs::TraceRecorder::Global().Enable(true);
  size_t i = 5000;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(model->TrainEdge(e));
  }
  obs::TraceRecorder::Global().Enable(false);
  obs::TraceRecorder::Global().Clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEdgeTraced);

void BM_ObsPerfScopeDisabled(benchmark::State& state) {
  // Prices the disabled hot path of SUPA_PERF_SCOPE: one relaxed atomic
  // load per scope. The acceptance budget is <= 0.1% per TrainEdge, which
  // at 8 scopes/edge means this must stay in the ~1ns range.
  obs::PerfProfiler::Global().Enable(false);
  for (auto _ : state) {
    SUPA_PERF_SCOPE(kTrainEdge);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsPerfScopeDisabled);

void BM_ObsPerfScopeEnabled(benchmark::State& state) {
  // Enabled cost: two counter-group reads plus the registry increments.
  // On a PMU-less host this prices the active fallback tier instead; the
  // tier is whatever PerfProfiler detection picked.
  obs::PerfProfiler::Global().Enable(true);
  for (auto _ : state) {
    SUPA_PERF_SCOPE(kTrainEdge);
    benchmark::ClobberMemory();
  }
  obs::PerfProfiler::Global().Enable(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsPerfScopeEnabled);

void BM_TrainEdgeProfiled(benchmark::State& state) {
  // BM_TrainEdge's dim-64 workload with hardware profiling ENABLED; the
  // gap to BM_TrainEdge/64 is the full per-edge profiling cost (8 scopes).
  const Dataset& data = BenchData();
  auto model = WarmModel(BenchConfig(64), 5000);
  obs::PerfProfiler::Global().Enable(true);
  size_t i = 5000;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(model->TrainEdge(e));
  }
  obs::PerfProfiler::Global().Enable(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEdgeProfiled);

void BM_ObsModelMonitorDisabled(benchmark::State& state) {
  // Prices the disabled hot path of the model monitor: the one relaxed
  // `enabled()` load TrainEdge/ObserveEdge/ScoreRequest use as their
  // guard. Must stay in the ~1ns range — a disabled monitor is free.
  obs::ModelMonitor::Global().Enable(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::ModelMonitor::Global().enabled());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsModelMonitorDisabled);

void BM_TrainEdgeMonitored(benchmark::State& state) {
  // BM_TrainEdge's dim-64 workload with the model monitor ENABLED; the
  // gap to BM_TrainEdge/64 is the full per-edge recording cost (gradient
  // L2 reduction + StepStats accumulation + one mutexed sketch insert).
  const Dataset& data = BenchData();
  auto model = WarmModel(BenchConfig(64), 5000);
  obs::ModelMonitor::Global().Enable(true);
  size_t i = 5000;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(model->TrainEdge(e));
  }
  obs::ModelMonitor::Global().Enable(false);
  obs::ModelMonitor::Global().Reset();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEdgeMonitored);

// ---- Durability: WAL appends and the delta checkpoint chain --------------

void BM_WalAppend(benchmark::State& state) {
  // arg 0 = WalSync::kOff (buffered), 1 = kEvery (fdatasync per record).
  namespace fs = std::filesystem;
  const Dataset& data = BenchData();
  const std::string dir = "bench_wal_append.tmp";
  std::error_code ec;
  fs::remove_all(dir, ec);
  dur::WalOptions wo;
  wo.sync = state.range(0) == 0 ? dur::WalSync::kOff : dur::WalSync::kEvery;
  auto writer = dur::WalWriter::Open(dir, wo, 0).value();
  dur::WalRecord rec;
  size_t i = 0;
  for (auto _ : state) {
    rec.edge = data.edges[i++ % data.edges.size()];
    benchmark::DoNotOptimize(writer->Append(rec));
  }
  (void)writer->Close();
  fs::remove_all(dir, ec);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "sync=off" : "sync=every");
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1);

void BM_DeltaCaptureDirtyRows(benchmark::State& state) {
  // Capture cost must scale with the burst size (dirty rows), not with
  // the model's total parameter count — the O(dirty) claim of §16.
  auto model = TrainedModel(2000);
  model->optimizer().set_checkpoint_tracking(true);
  const size_t burst = static_cast<size_t>(state.range(0));
  size_t i = 2000;
  for (auto _ : state) {
    state.PauseTiming();
    model->optimizer().ClearCheckpointDirty();
    TrainBurst(*model, 2000 + (i++ % 2000), burst);
    state.ResumeTiming();
    benchmark::DoNotOptimize(dur::CaptureDirtyRows(*model));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaCaptureDirtyRows)->Arg(8)->Arg(64)->Arg(256);

void BM_DeltaFileWrite(benchmark::State& state) {
  namespace fs = std::filesystem;
  auto model = TrainedModel(2000);
  model->optimizer().set_checkpoint_tracking(true);
  model->optimizer().ClearCheckpointDirty();
  TrainBurst(*model, 2000, 64);
  const dur::DeltaCapture delta = dur::CaptureDirtyRows(*model).value();
  const std::string path = "bench_delta_write.tmp";
  for (auto _ : state) {
    benchmark::DoNotOptimize(dur::WriteDeltaFile(path, delta));
  }
  std::error_code ec;
  fs::remove(path, ec);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaFileWrite);

void BM_DeltaChainCompact(benchmark::State& state) {
  // Folding `chain_len` deltas into a copy of their base — the in-memory
  // half of what the engine's compaction does at the chain threshold.
  auto model = TrainedModel(2000);
  model->optimizer().set_checkpoint_tracking(true);
  const dur::LogicalCheckpoint base = dur::GatherLogicalState(*model);
  const size_t chain_len = static_cast<size_t>(state.range(0));
  std::vector<dur::DeltaCapture> chain;
  for (size_t d = 0; d < chain_len; ++d) {
    model->optimizer().ClearCheckpointDirty();
    TrainBurst(*model, 2000 + d * 97, 64);
    chain.push_back(dur::CaptureDirtyRows(*model).value());
  }
  for (auto _ : state) {
    state.PauseTiming();
    dur::LogicalCheckpoint folded = base;
    state.ResumeTiming();
    for (const auto& delta : chain) {
      benchmark::DoNotOptimize(dur::ApplyDelta(delta, &folded));
    }
  }
  state.SetItemsProcessed(state.iterations() * chain_len);
}
BENCHMARK(BM_DeltaChainCompact)->Arg(2)->Arg(8);

void BM_DeltaChainRestore(benchmark::State& state) {
  // Recovery's checkpoint half: read the base file plus `chain_len`
  // delta files from disk and materialise the final logical state.
  namespace fs = std::filesystem;
  const std::string dir = "bench_chain_restore.tmp";
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  auto model = TrainedModel(2000);
  model->optimizer().set_checkpoint_tracking(true);
  (void)dur::WriteBaseFile(dir + "/base", dur::GatherLogicalState(*model));
  const size_t chain_len = static_cast<size_t>(state.range(0));
  std::vector<std::string> files;
  for (size_t d = 0; d < chain_len; ++d) {
    model->optimizer().ClearCheckpointDirty();
    TrainBurst(*model, 2000 + d * 97, 64);
    files.push_back(dir + "/d" + std::to_string(d));
    (void)dur::WriteDeltaFile(files.back(),
                              dur::CaptureDirtyRows(*model).value());
  }
  for (auto _ : state) {
    dur::LogicalCheckpoint lc = dur::ReadBaseFile(dir + "/base").value();
    for (const std::string& f : files) {
      (void)dur::ApplyDelta(dur::ReadDeltaFile(f).value(), &lc);
    }
    benchmark::DoNotOptimize(lc.params.data());
  }
  fs::remove_all(dir, ec);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeltaChainRestore)->Arg(2)->Arg(8);

void BM_InsLearnBatch(benchmark::State& state) {
  const Dataset& data = BenchData();
  InsLearnConfig tc;
  tc.batch_size = static_cast<size_t>(state.range(0));
  tc.max_iters = 2;
  tc.valid_interval = 1;
  tc.valid_size = 50;
  for (auto _ : state) {
    state.PauseTiming();
    SupaModel model(data, BenchConfig());
    InsLearnTrainer trainer(tc);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        trainer.Train(model, data, EdgeRange{0, tc.batch_size}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsLearnBatch)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace supa

BENCHMARK_MAIN();
