// google-benchmark micro-op suite for SUPA's hot paths: per-edge training,
// influenced-graph sampling, scoring, graph appends, and the sparse
// optimizer — the operations whose costs compose the O((kl + N_neg)·|E|)
// training complexity of §III-F.2.

#include <benchmark/benchmark.h>

#include "core/inslearn.h"
#include "core/model.h"
#include "data/synthetic.h"

namespace supa {
namespace {

const Dataset& BenchData() {
  static const Dataset data = MakeTaobao(0.5, 77).value();
  return data;
}

SupaConfig BenchConfig(int dim = 64) {
  SupaConfig c;
  c.dim = dim;
  c.num_walks = 4;
  c.walk_len = 3;
  c.num_neg = 5;
  return c;
}

std::unique_ptr<SupaModel> WarmModel(const SupaConfig& config,
                                     size_t warm_edges) {
  const Dataset& data = BenchData();
  auto model = std::make_unique<SupaModel>(data, config);
  for (size_t i = 0; i < warm_edges && i < data.edges.size(); ++i) {
    (void)model->ObserveEdge(data.edges[i]);
  }
  return model;
}

void BM_TrainEdge(benchmark::State& state) {
  const Dataset& data = BenchData();
  SupaConfig config = BenchConfig(static_cast<int>(state.range(0)));
  auto model = WarmModel(config, 5000);
  size_t i = 5000;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(model->TrainEdge(e));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainEdge)->Arg(32)->Arg(64)->Arg(128);

void BM_InfluencedGraphSampling(benchmark::State& state) {
  const Dataset& data = BenchData();
  SupaConfig config = BenchConfig();
  config.num_walks = static_cast<int>(state.range(0));
  auto model = WarmModel(config, 5000);
  InfluencedGraphSampler sampler(model->graph(), data.metapaths,
                                 config.num_walks, config.walk_len);
  Rng rng(1);
  size_t i = 0;
  for (auto _ : state) {
    const auto& e = data.edges[5000 + (i++ % 4000)];
    benchmark::DoNotOptimize(sampler.Sample(e.src, e.dst, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InfluencedGraphSampling)->Arg(1)->Arg(4)->Arg(16);

void BM_Score(benchmark::State& state) {
  auto model = WarmModel(BenchConfig(), 5000);
  const Dataset& data = BenchData();
  Rng rng(2);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(rng.Index(data.num_nodes()));
    const NodeId v = static_cast<NodeId>(rng.Index(data.num_nodes()));
    benchmark::DoNotOptimize(model->Score(u, v, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Score);

void BM_ObserveEdge(benchmark::State& state) {
  const Dataset& data = BenchData();
  std::unique_ptr<SupaModel> model;
  size_t i = 0;
  for (auto _ : state) {
    if (i == 0 || i >= data.edges.size()) {
      state.PauseTiming();
      model = std::make_unique<SupaModel>(data, BenchConfig());
      i = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(model->ObserveEdge(data.edges[i++]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObserveEdge);

void BM_AdamStepRows(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const size_t dim = 64;
  std::vector<float> params(rows * dim, 0.1f);
  SparseAdam adam(params.size(), 3e-3, 1e-4);
  GradBuffer grads;
  std::vector<float> grad_row(dim, 0.01f);
  for (auto _ : state) {
    grads.Clear();
    for (size_t r = 0; r < rows; ++r) {
      grads.Accumulate(r * dim, dim, 1.0, grad_row.data());
    }
    adam.Step(grads, params.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AdamStepRows)->Arg(4)->Arg(16)->Arg(64);

void BM_InsLearnBatch(benchmark::State& state) {
  const Dataset& data = BenchData();
  InsLearnConfig tc;
  tc.batch_size = static_cast<size_t>(state.range(0));
  tc.max_iters = 2;
  tc.valid_interval = 1;
  tc.valid_size = 50;
  for (auto _ : state) {
    state.PauseTiming();
    SupaModel model(data, BenchConfig());
    InsLearnTrainer trainer(tc);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        trainer.Train(model, data, EdgeRange{0, tc.batch_size}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsLearnBatch)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace supa

BENCHMARK_MAIN();
