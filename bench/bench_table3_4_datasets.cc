// Reproduces Tables III and IV: the statistics of the (emulated) datasets
// (|V|, |E|, |O|, |R|, |T|) and the selected multiplex metapath schemas.
// |O| and |R| match the paper exactly by construction; |V|, |E|, |T| are
// the scaled-down emulator sizes (multiply SUPA_BENCH_SCALE to enlarge).

#include <map>

#include "bench/bench_common.h"
#include "data/stats.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto all = MakeAllPaperDatasets(env.scale, 100);
  if (!all.ok()) {
    std::fprintf(stderr, "%s\n", all.status().ToString().c_str());
    return 1;
  }

  // Paper Table III reference rows for side-by-side shape checking.
  struct PaperRow {
    const char* v;
    const char* e;
    const char* o;
    const char* r;
    const char* t;
  };
  const std::map<std::string, PaperRow> paper = {
      {"UCI", {"1,677", "56,617", "1", "1", "47,123"}},
      {"Amazon", {"10,099", "148,659", "1", "2", "1"}},
      {"Last.fm", {"127,786", "720,537", "2", "1", "707,959"}},
      {"MovieLens", {"16,578", "1,231,508", "2", "2", "877,684"}},
      {"Taobao", {"12,611", "20,890", "2", "4", "20406"}},
      {"Kuaishou", {"138,812", "1,779,639", "3", "5", "705,302"}},
  };

  Report t3("Table III — dataset statistics (ours vs paper)");
  t3.SetHeader({"Dataset", "|V|", "|E|", "|O|", "|R|", "|T|", "paper |V|",
                "paper |E|", "paper |O|", "paper |R|", "paper |T|"});
  for (const auto& data : all.value()) {
    const DatasetStats s = ComputeStats(data);
    const PaperRow& p = paper.at(data.name);
    t3.AddRow({data.name, std::to_string(s.num_nodes),
               std::to_string(s.num_edges), std::to_string(s.num_node_types),
               std::to_string(s.num_edge_types),
               std::to_string(s.num_timestamps), p.v, p.e, p.o, p.r, p.t});
  }
  t3.Print();

  Report t4("Table IV — selected multiplex metapath schemas");
  t4.SetHeader({"Dataset", "schema"});
  for (const auto& data : all.value()) {
    for (const auto& mp : data.metapaths) {
      t4.AddRow({data.name, mp.ToString(data.schema)});
    }
  }
  t4.Print();
  t3.MaybeWriteTsv(OutPath(argc, argv));
  t3.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
