// Reproduces Figure 7: scalability in terms of fast-changing data. The
// training batch size S_batch is swept over powers of two; for each value
// we report the average per-batch (re)training time, the implied
// edges-per-second throughput, and the resulting H@50 — the paper's claim
// is time linear in S_batch with stable accuracy for S_batch >= 32.

#include <cmath>

#include "bench/bench_common.h"
#include "baselines/recommender.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  auto split = SplitTemporal(data).value();

  Report report("Figure 7 — scalability vs training batch size S_batch");
  report.SetHeader({"S_batch", "avg_batch_s", "edges_per_s", "H@50", "MRR"});

  for (int log2_batch = 5; log2_batch <= 15; ++log2_batch) {
    const size_t batch = static_cast<size_t>(1) << log2_batch;
    SupaConfig model_config;
    model_config.dim = 64;
    InsLearnConfig train_config;
    train_config.batch_size = batch;
    train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
    train_config.valid_interval = 4;
    SupaRecommender model(model_config, train_config);

    Timer timer;
    Status st = model.Fit(data, split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double total_s = timer.ElapsedSeconds();
    const size_t num_batches =
        (split.train.size() + batch - 1) / batch;
    const double avg_batch_s = total_s / static_cast<double>(num_batches);
    const double edges_per_s =
        static_cast<double>(split.train.size()) / total_s;

    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    auto result = EvaluateLinkPrediction(model, data, split.test,
                                         EdgeRange{0, split.valid.end}, eval);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    report.AddRow({std::to_string(batch), Fmt(avg_batch_s, 4),
                   Fmt(edges_per_s, 0), Fmt(result.value().hit50),
                   Fmt(result.value().mrr)});
    SUPA_LOG(INFO) << "fig7: S_batch=" << batch << " avg " << avg_batch_s
                   << "s/batch";
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  return 0;
}
