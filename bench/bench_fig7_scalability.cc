// Reproduces Figure 7: scalability in terms of fast-changing data. The
// training batch size S_batch is swept over powers of two; for each value
// we report the average per-batch (re)training time, the implied
// edges-per-second throughput, and the resulting H@50 — the paper's claim
// is time linear in S_batch with stable accuracy for S_batch >= 32.

#include <cmath>

#include "bench/bench_common.h"
#include "baselines/recommender.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  auto split = SplitTemporal(data).value();

  Report report("Figure 7 — scalability vs training batch size S_batch");
  report.SetHeader({"S_batch", "avg_batch_s", "edges_per_s", "H@50", "MRR"});

  for (int log2_batch = 5; log2_batch <= 15; ++log2_batch) {
    const size_t batch = static_cast<size_t>(1) << log2_batch;
    SupaConfig model_config;
    model_config.dim = 64;
    InsLearnConfig train_config;
    train_config.batch_size = batch;
    train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
    train_config.valid_interval = 4;
    SupaRecommender model(model_config, train_config);

    Timer timer;
    Status st = model.Fit(data, split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double total_s = timer.ElapsedSeconds();
    const size_t num_batches =
        (split.train.size() + batch - 1) / batch;
    const double avg_batch_s = total_s / static_cast<double>(num_batches);
    const double edges_per_s =
        static_cast<double>(split.train.size()) / total_s;

    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    eval.threads = env.threads;
    auto result = EvaluateLinkPrediction(model, data, split.test,
                                         EdgeRange{0, split.valid.end}, eval);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    report.AddRow({std::to_string(batch), Fmt(avg_batch_s, 4),
                   Fmt(edges_per_s, 0), Fmt(result.value().hit50),
                   Fmt(result.value().mrr)});
    SUPA_LOG(INFO) << "fig7: S_batch=" << batch << " avg " << avg_batch_s
                   << "s/batch";
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));

  // Thread sweep: evaluation scalability on the largest dataset of the
  // sweep. One model is trained once; the same link-prediction workload
  // is then timed at 1/2/4/8 eval threads. The determinism contract
  // (fixed sharding + per-shard seeds, see util/thread_pool.h) means the
  // metrics must be bit-identical across rows — only the time may change.
  {
    SupaConfig model_config;
    model_config.dim = 64;
    InsLearnConfig train_config;
    train_config.batch_size = 4096;
    train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
    train_config.valid_interval = 4;
    SupaRecommender model(model_config, train_config);
    Status st = model.Fit(data, split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }

    Report sweep("Figure 7b — evaluation scalability vs threads");
    sweep.SetHeader({"threads", "eval_s", "speedup", "H@50", "MRR"});
    double serial_s = 0.0;
    RankingResult serial_result;
    for (size_t threads : {1, 2, 4, 8}) {
      EvalConfig eval;
      // A larger case budget than the accuracy sweep so per-eval wall
      // time dominates the pool's scheduling overhead.
      eval.max_test_edges = env.test_edges * 4;
      eval.threads = threads;
      Timer timer;
      auto result = EvaluateLinkPrediction(
          model, data, split.test, EdgeRange{0, split.valid.end}, eval);
      const double eval_s = timer.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        serial_s = eval_s;
        serial_result = result.value();
      } else if (result.value().mrr != serial_result.mrr ||
                 result.value().hit50 != serial_result.hit50) {
        std::fprintf(stderr,
                     "determinism violation: threads=%zu diverged from "
                     "threads=1\n",
                     threads);
        return 1;
      }
      sweep.AddRow({std::to_string(threads), Fmt(eval_s, 4),
                    Fmt(serial_s / eval_s, 2), Fmt(result.value().hit50),
                    Fmt(result.value().mrr)});
      SUPA_LOG(INFO) << "fig7b: threads=" << threads << " eval " << eval_s
                     << "s";
    }
    sweep.Print();
  }
  return 0;
}
