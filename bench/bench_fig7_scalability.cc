// Reproduces Figure 7: scalability in terms of fast-changing data. The
// training batch size S_batch is swept over powers of two; for each value
// we report the average per-batch (re)training time, the implied
// edges-per-second throughput, and the resulting H@50 — the paper's claim
// is time linear in S_batch with stable accuracy for S_batch >= 32.

#include <cmath>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "baselines/recommender.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "store/graph_store.h"
#include "util/timer.h"

namespace {

// SUPA_BENCH_SECTIONS: comma-separated subset of
// {batch,eval_threads,shards,writers} to run (unset/empty = all). Lets CI
// gate only the sections it uploads without paying for the full figure.
bool SectionEnabled(const char* name) {
  const char* spec = std::getenv("SUPA_BENCH_SECTIONS");
  if (spec == nullptr || *spec == '\0') return true;
  const size_t len = std::strlen(name);
  for (const char* p = spec; (p = std::strstr(p, name)) != nullptr; ++p) {
    const bool left_ok = (p == spec || p[-1] == ',');
    const bool right_ok = (p[len] == '\0' || p[len] == ',');
    if (left_ok && right_ok) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();
  auto split = SplitTemporal(data).value();

  Report report("Figure 7 — scalability vs training batch size S_batch");
  report.SetHeader({"S_batch", "avg_batch_s", "edges_per_s", "H@50", "MRR"});

  for (int log2_batch = 5; SectionEnabled("batch") && log2_batch <= 15;
       ++log2_batch) {
    const size_t batch = static_cast<size_t>(1) << log2_batch;
    SupaConfig model_config;
    model_config.dim = 64;
    InsLearnConfig train_config;
    train_config.batch_size = batch;
    train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
    train_config.valid_interval = 4;
    SupaRecommender model(model_config, train_config);

    Timer timer;
    Status st = model.Fit(data, split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }
    const double total_s = timer.ElapsedSeconds();
    const size_t num_batches =
        (split.train.size() + batch - 1) / batch;
    const double avg_batch_s = total_s / static_cast<double>(num_batches);
    const double edges_per_s =
        static_cast<double>(split.train.size()) / total_s;

    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    eval.threads = env.threads;
    auto result = EvaluateLinkPrediction(model, data, split.test,
                                         EdgeRange{0, split.valid.end}, eval);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    report.AddRow({std::to_string(batch), Fmt(avg_batch_s, 4),
                   Fmt(edges_per_s, 0), Fmt(result.value().hit50),
                   Fmt(result.value().mrr)});
    SUPA_LOG(INFO) << "fig7: S_batch=" << batch << " avg " << avg_batch_s
                   << "s/batch";
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));

  // Thread sweep: evaluation scalability on the largest dataset of the
  // sweep. One model is trained once; the same link-prediction workload
  // is then timed at 1/2/4/8 eval threads. The determinism contract
  // (fixed sharding + per-shard seeds, see util/thread_pool.h) means the
  // metrics must be bit-identical across rows — only the time may change.
  if (SectionEnabled("eval_threads")) {
    SupaConfig model_config;
    model_config.dim = 64;
    InsLearnConfig train_config;
    train_config.batch_size = 4096;
    train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
    train_config.valid_interval = 4;
    SupaRecommender model(model_config, train_config);
    Status st = model.Fit(data, split.train);
    if (!st.ok()) {
      std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
      return 1;
    }

    Report sweep("Figure 7b — evaluation scalability vs threads");
    sweep.SetHeader({"threads", "eval_s", "speedup", "H@50", "MRR"});
    double serial_s = 0.0;
    RankingResult serial_result;
    for (size_t threads : {1, 2, 4, 8}) {
      EvalConfig eval;
      // A larger case budget than the accuracy sweep so per-eval wall
      // time dominates the pool's scheduling overhead.
      eval.max_test_edges = env.test_edges * 4;
      eval.threads = threads;
      Timer timer;
      auto result = EvaluateLinkPrediction(
          model, data, split.test, EdgeRange{0, split.valid.end}, eval);
      const double eval_s = timer.ElapsedSeconds();
      if (!result.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (threads == 1) {
        serial_s = eval_s;
        serial_result = result.value();
      } else if (result.value().mrr != serial_result.mrr ||
                 result.value().hit50 != serial_result.hit50) {
        std::fprintf(stderr,
                     "determinism violation: threads=%zu diverged from "
                     "threads=1\n",
                     threads);
        return 1;
      }
      sweep.AddRow({std::to_string(threads), Fmt(eval_s, 4),
                    Fmt(serial_s / eval_s, 2), Fmt(result.value().hit50),
                    Fmt(result.value().mrr)});
      SUPA_LOG(INFO) << "fig7b: threads=" << threads << " eval " << eval_s
                     << "s";
    }
    sweep.Print();
  }

  // Shard sweep: the storage engine's shard count is a placement knob,
  // not a modelling one — training, evaluation, and checkpoint bytes are
  // bit-identical at every value (DESIGN.md §11). The sweep times Fit at
  // each count (one sample per SUPA_BENCH_REPEATS repeat, refitting from
  // scratch so every repeat is the identical workload), hard-asserts the
  // bit-identity contract against shards=1, and reports the per-shard
  // memory split the store.shard_bytes gauges expose.
  struct ShardPoint {
    size_t shards = 1;
    std::vector<double> fit_samples;  // per-repeat Fit wall seconds
    double edges_per_s = 0.0;         // from the last repeat
    std::vector<uint64_t> shard_bytes;
    RankingResult metrics;
  };
  std::vector<ShardPoint> shard_points;
  Report shard_report("Figure 7c — storage shard sweep (bit-identical)");
  shard_report.SetHeader({"shards", "fit_s", "edges_per_s", "max_shard_MB",
                          "total_MB", "H@50", "MRR"});
  const size_t shard_repeats = std::max<size_t>(1, env.repeats);
  std::vector<size_t> shard_counts;
  if (SectionEnabled("shards")) shard_counts = {1, 2, 4, 8};
  for (size_t shards : shard_counts) {
    ShardPoint point;
    point.shards = shards;
    for (size_t rep = 0; rep < shard_repeats; ++rep) {
      SupaConfig model_config;
      model_config.dim = 64;
      model_config.shards = shards;
      InsLearnConfig train_config;
      train_config.batch_size = 4096;
      train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
      train_config.valid_interval = 4;
      SupaRecommender model(model_config, train_config);
      Timer timer;
      Status st = model.Fit(data, split.train);
      const double fit_s = timer.ElapsedSeconds();
      if (!st.ok()) {
        std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
        return 1;
      }
      point.fit_samples.push_back(fit_s);
      if (rep + 1 < shard_repeats) continue;

      point.edges_per_s =
          static_cast<double>(split.train.size()) / fit_s;
      const store::GraphStore& store = model.model()->graph_store();
      for (size_t s = 0; s < store.num_shards(); ++s) {
        point.shard_bytes.push_back(store.ShardBytesEstimate(s));
      }
      EvalConfig eval;
      eval.max_test_edges = env.test_edges;
      eval.threads = env.threads;
      auto result = EvaluateLinkPrediction(
          model, data, split.test, EdgeRange{0, split.valid.end}, eval);
      if (!result.ok()) {
        std::fprintf(stderr, "eval failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      point.metrics = result.value();
    }
    if (!shard_points.empty()) {
      const RankingResult& base = shard_points.front().metrics;
      if (point.metrics.mrr != base.mrr ||
          point.metrics.hit20 != base.hit20 ||
          point.metrics.hit50 != base.hit50 ||
          point.metrics.ndcg10 != base.ndcg10) {
        std::fprintf(stderr,
                     "determinism violation: shards=%zu diverged from "
                     "shards=1\n",
                     shards);
        return 1;
      }
    }
    uint64_t max_bytes = 0;
    uint64_t total_bytes = 0;
    for (uint64_t b : point.shard_bytes) {
      max_bytes = std::max(max_bytes, b);
      total_bytes += b;
    }
    const double mb = 1.0 / (1024.0 * 1024.0);
    shard_report.AddRow(
        {std::to_string(shards), Fmt(point.fit_samples.back(), 4),
         Fmt(point.edges_per_s, 0),
         Fmt(static_cast<double>(max_bytes) * mb, 2),
         Fmt(static_cast<double>(total_bytes) * mb, 2),
         Fmt(point.metrics.hit50), Fmt(point.metrics.mrr)});
    SUPA_LOG(INFO) << "fig7c: shards=" << shards << " fit "
                   << point.fit_samples.back() << "s, max shard "
                   << max_bytes << " bytes";
    shard_points.push_back(std::move(point));
  }
  shard_report.Print();

  // Writer sweep: the multi-writer ingest pipeline (DESIGN.md §13) at a
  // fixed 8-shard store. writers=1 is the serial trainer baseline; the
  // fast rows (2/4/8 writers) must be bit-identical to EACH OTHER (group
  // formation is writer-count independent) and the strict row must be
  // bit-identical to serial. Only wall time may move.
  struct WriterPoint {
    std::string label;  // "1".."8" or "4_strict" — JSON sample key stem
    size_t writers = 1;
    std::vector<double> fit_samples;  // per-repeat Fit wall seconds
    double edges_per_s = 0.0;         // from the best repeat
    RankingResult metrics;
  };
  std::vector<WriterPoint> writer_points;
  Report writer_report("Figure 7d — multi-writer ingest sweep (8 shards)");
  writer_report.SetHeader(
      {"writers", "mode", "fit_s", "edges_per_s", "speedup", "H@50", "MRR"});
  if (SectionEnabled("writers")) {
    // Speedup needs spare cores: with fewer hardware threads than
    // writers the sweep measures pipeline overhead, not scaling. Say so
    // instead of letting a flat curve read as a regression.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw < 4) {
      SUPA_LOG(WARNING)
          << "fig7d: only " << hw << " hardware thread(s); writer rows are "
          << "parallelism-starved — ratios measure pipeline overhead, "
          << "not multi-core scaling";
    }
    struct WriterCell {
      size_t writers;
      IngestMode mode;
    };
    const WriterCell cells[] = {{1, IngestMode::kFast},
                                {2, IngestMode::kFast},
                                {4, IngestMode::kFast},
                                {8, IngestMode::kFast},
                                {4, IngestMode::kStrict}};
    for (const WriterCell& cell : cells) {
      const bool strict = cell.mode == IngestMode::kStrict;
      WriterPoint point;
      point.writers = cell.writers;
      point.label =
          std::to_string(cell.writers) + (strict ? "_strict" : "");
      for (size_t rep = 0; rep < shard_repeats; ++rep) {
        SupaConfig model_config;
        model_config.dim = 64;
        model_config.shards = 8;
        InsLearnConfig train_config;
        train_config.batch_size = 4096;
        train_config.max_iters =
            std::max(1, static_cast<int>(8 * env.effort));
        train_config.valid_interval = 4;
        train_config.writer_threads = cell.writers;
        train_config.ingest_mode = cell.mode;
        SupaRecommender model(model_config, train_config);
        Timer timer;
        Status st = model.Fit(data, split.train);
        const double fit_s = timer.ElapsedSeconds();
        if (!st.ok()) {
          std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
          return 1;
        }
        point.fit_samples.push_back(fit_s);
        if (rep + 1 < shard_repeats) continue;

        EvalConfig eval;
        eval.max_test_edges = env.test_edges;
        eval.threads = env.threads;
        auto result = EvaluateLinkPrediction(
            model, data, split.test, EdgeRange{0, split.valid.end}, eval);
        if (!result.ok()) {
          std::fprintf(stderr, "eval failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        point.metrics = result.value();
      }
      double best_s = point.fit_samples.front();
      for (double s : point.fit_samples) best_s = std::min(best_s, s);
      point.edges_per_s = static_cast<double>(split.train.size()) / best_s;

      // Determinism cross-checks against the rows already collected.
      auto same = [](const RankingResult& a, const RankingResult& b) {
        return a.mrr == b.mrr && a.hit20 == b.hit20 && a.hit50 == b.hit50 &&
               a.ndcg10 == b.ndcg10;
      };
      for (const WriterPoint& prev : writer_points) {
        const bool prev_serial = prev.label == "1";
        const bool prev_fast = !prev_serial && prev.label.back() != 't';
        const bool want_equal =
            strict ? prev_serial : (cell.writers > 1 && prev_fast);
        if (want_equal && !same(point.metrics, prev.metrics)) {
          std::fprintf(stderr,
                       "determinism violation: writers=%s diverged from "
                       "writers=%s\n",
                       point.label.c_str(), prev.label.c_str());
          return 1;
        }
      }

      double base_best = best_s;
      if (!writer_points.empty()) {
        base_best = writer_points.front().fit_samples.front();
        for (double s : writer_points.front().fit_samples) {
          base_best = std::min(base_best, s);
        }
      }
      writer_report.AddRow(
          {std::to_string(cell.writers), strict ? "strict" : "fast",
           Fmt(best_s, 4), Fmt(point.edges_per_s, 0),
           Fmt(base_best / best_s, 2), Fmt(point.metrics.hit50),
           Fmt(point.metrics.mrr)});
      SUPA_LOG(INFO) << "fig7d: writers=" << point.label << " fit " << best_s
                     << "s (" << point.edges_per_s << " edges/s)";
      writer_points.push_back(std::move(point));
    }
  }
  writer_report.Print();

  // Hardware profile of the ingest pipeline stages (DESIGN.md §14): a
  // dedicated profiled loop at the representative writers=4 fast config,
  // kept out of the timing sweep above so fit_wall_s samples stay
  // comparable with unprofiled baselines. Each repeat is one Fit; the
  // per-repeat counter deltas become bench_compare sample arrays. On
  // PMU-less hosts the fallback ladder emits all-zero ratios under the
  // same keys ("perf.source" names the tier).
  constexpr const char* kIngestStages[] = {"ingest_plan", "ingest_execute",
                                           "ingest_commit"};
  constexpr size_t kNumIngestStages = 3;
  struct StagePerfSamples {
    std::vector<double> llc_miss_rate;
    std::vector<double> ipc;
    std::vector<double> cycles;
    uint64_t total_cycles = 0, total_instructions = 0;
    uint64_t total_llc_loads = 0, total_llc_misses = 0, total_scopes = 0;
  };
  StagePerfSamples stage_perf[kNumIngestStages];
  bool ingest_profiled = false;
  if (SectionEnabled("writers")) {
    ingest_profiled = true;
    obs::PerfProfiler::Global().Enable(true);
    for (size_t rep = 0; rep < shard_repeats; ++rep) {
      const obs::MetricsSnapshot perf_before =
          obs::MetricsRegistry::Global().Snapshot();
      SupaConfig model_config;
      model_config.dim = 64;
      model_config.shards = 8;
      InsLearnConfig train_config;
      train_config.batch_size = 4096;
      train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
      train_config.valid_interval = 4;
      train_config.writer_threads = 4;
      train_config.ingest_mode = IngestMode::kFast;
      SupaRecommender model(model_config, train_config);
      Status st = model.Fit(data, split.train);
      if (!st.ok()) {
        std::fprintf(stderr, "fit failed: %s\n", st.ToString().c_str());
        return 1;
      }
      const obs::MetricsSnapshot perf_after =
          obs::MetricsRegistry::Global().Snapshot();
      for (size_t i = 0; i < kNumIngestStages; ++i) {
        auto delta = [&](const char* slot) {
          const std::string name =
              std::string("perf.") + kIngestStages[i] + "." + slot;
          return perf_after.CounterValue(name) -
                 perf_before.CounterValue(name);
        };
        const uint64_t cycles = delta("cycles");
        const uint64_t instructions = delta("instructions");
        const uint64_t loads = delta("llc_loads");
        const uint64_t misses = delta("llc_misses");
        StagePerfSamples& s = stage_perf[i];
        s.llc_miss_rate.push_back(
            loads > 0 ? static_cast<double>(misses) / loads : 0.0);
        s.ipc.push_back(
            cycles > 0 ? static_cast<double>(instructions) / cycles : 0.0);
        s.cycles.push_back(static_cast<double>(cycles));
        s.total_cycles += cycles;
        s.total_instructions += instructions;
        s.total_llc_loads += loads;
        s.total_llc_misses += misses;
        s.total_scopes += delta("scopes");
      }
    }
    obs::PerfProfiler::Global().Enable(false);
  }

  // --json-out: the S_batch table (Report schema), the shard sweep with
  // the raw per-shard byte split, and a top-level "samples" object so
  // tools/bench_compare can Welch-test the per-shard-count Fit timings
  // (memory entries are single-sample: reported, never gated).
  const std::string json_path = JsonOutPath(argc, argv);
  if (!json_path.empty()) {
    obs::JsonWriter w;
    w.BeginObject();
    w.Field("title", report.title());
    w.Key("header").BeginArray();
    for (const auto& cell : report.header()) w.String(cell);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : report.rows()) {
      w.BeginArray();
      for (const auto& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.Key("shard_sweep").BeginObject();
    w.Key("header").BeginArray();
    for (const auto& cell : shard_report.header()) w.String(cell);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : shard_report.rows()) {
      w.BeginArray();
      for (const auto& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.Key("per_shard_bytes").BeginObject();
    for (const ShardPoint& point : shard_points) {
      w.Key(std::to_string(point.shards)).BeginArray();
      for (uint64_t b : point.shard_bytes) {
        w.Uint(b);
      }
      w.EndArray();
    }
    w.EndObject();
    w.EndObject();
    w.Key("writer_sweep").BeginObject();
    w.Key("header").BeginArray();
    for (const auto& cell : writer_report.header()) w.String(cell);
    w.EndArray();
    w.Key("rows").BeginArray();
    for (const auto& row : writer_report.rows()) {
      w.BeginArray();
      for (const auto& cell : row) w.String(cell);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    w.Key("samples").BeginObject();
    for (const ShardPoint& point : shard_points) {
      const std::string prefix = "shards" + std::to_string(point.shards);
      w.Key(prefix + "_fit_wall_s").BeginArray();
      for (double s : point.fit_samples) w.Double(s);
      w.EndArray();
      uint64_t max_bytes = 0;
      for (uint64_t b : point.shard_bytes) max_bytes = std::max(max_bytes, b);
      w.Key(prefix + "_max_shard_bytes").BeginArray();
      w.Double(static_cast<double>(max_bytes));
      w.EndArray();
    }
    for (const WriterPoint& point : writer_points) {
      w.Key("writers" + point.label + "_fit_wall_s").BeginArray();
      for (double s : point.fit_samples) w.Double(s);
      w.EndArray();
    }
    if (ingest_profiled) {
      for (size_t i = 0; i < kNumIngestStages; ++i) {
        const std::string prefix = kIngestStages[i];
        auto sample_array = [&w](const std::string& name,
                                 const std::vector<double>& xs) {
          w.Key(name).BeginArray();
          for (double x : xs) w.Double(x);
          w.EndArray();
        };
        sample_array(prefix + "_llc_miss_rate", stage_perf[i].llc_miss_rate);
        sample_array(prefix + "_ipc", stage_perf[i].ipc);
        sample_array(prefix + "_cycles", stage_perf[i].cycles);
      }
    }
    w.EndObject();
    if (ingest_profiled) {
      w.Key("perf").BeginObject();
      w.Field("source", std::string_view(obs::PerfSourceName(
                            obs::PerfProfiler::Global().source())));
      w.Field("profiled_repeats", static_cast<uint64_t>(shard_repeats));
      w.Key("stages").BeginObject();
      for (size_t i = 0; i < kNumIngestStages; ++i) {
        const StagePerfSamples& s = stage_perf[i];
        w.Key(kIngestStages[i]).BeginObject();
        w.Field("scopes", s.total_scopes);
        w.Field("cycles", s.total_cycles);
        w.Field("instructions", s.total_instructions);
        w.Field("llc_loads", s.total_llc_loads);
        w.Field("llc_misses", s.total_llc_misses);
        w.EndObject();
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndObject();
    std::string error;
    if (!obs::WriteTextFile(json_path, w.str(), &error)) {
      SUPA_LOG(ERROR) << "failed to write " << json_path << ": " << error;
    } else {
      std::printf("(wrote %s)\n", json_path.c_str());
    }
  }
  return 0;
}
