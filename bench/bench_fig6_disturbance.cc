// Reproduces Figure 6: robustness to neighborhood disturbance on
// MovieLens. Each method trains on subgraphs where every node keeps only
// its η most recent neighbors, η ∈ {5, 10, 20, 50, 100, ∞}; the paper's
// claim is that SUPA (propagate, don't aggregate) is insensitive to η
// while neighbor-aggregation methods swing.

#include "bench/bench_common.h"
#include "baselines/registry.h"
#include "data/synthetic.h"
#include "eval/protocols.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  const std::vector<size_t> etas = {5, 10, 20, 50, 100, 0};  // 0 = ∞

  auto data_or = MakeMovielens(env.scale, 100);
  if (!data_or.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 data_or.status().ToString().c_str());
    return 1;
  }
  const Dataset& data = data_or.value();

  Report h50_report("Figure 6 (top) — H@50 vs neighbor cap η");
  Report mrr_report("Figure 6 (bottom) — MRR vs neighbor cap η");
  std::vector<std::string> header = {"Method"};
  for (size_t eta : etas) {
    header.push_back(eta == 0 ? "inf" : "eta=" + std::to_string(eta));
  }
  h50_report.SetHeader(header);
  mrr_report.SetHeader(header);

  for (const auto& method : StrongBaselineNames()) {
    EvalConfig eval;
    eval.max_test_edges = env.test_edges;
    auto results = RunDisturbanceProtocol(
        [&]() -> std::unique_ptr<Recommender> {
          RegistryOptions options;
          options.dim = 64;
          options.effort = env.effort;
          return std::move(MakeRecommender(method, options).value());
        },
        data, etas, eval);
    if (!results.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", method.c_str(),
                   results.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> h50_row = {method};
    std::vector<std::string> mrr_row = {method};
    for (const auto& r : results.value()) {
      h50_row.push_back(Fmt(r.hit50));
      mrr_row.push_back(Fmt(r.mrr));
    }
    h50_report.AddRow(std::move(h50_row));
    mrr_report.AddRow(std::move(mrr_row));
    SUPA_LOG(INFO) << "fig6: finished " << method;
  }

  h50_report.Print();
  mrr_report.Print();
  h50_report.MaybeWriteTsv(OutPath(argc, argv));
  h50_report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
