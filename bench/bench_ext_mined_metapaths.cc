// Extension experiment (beyond the paper): automatic metapath mining (the
// paper's §VI future work). Compares SUPA trained with (a) the
// hand-written Table-IV schema set, (b) schemas mined from the observed
// stream prefix, and (c) a deliberately impoverished single-schema set —
// on the two multiplex datasets. The claim to check: mined ≈ hand-written
// ≫ impoverished.

#include "bench/bench_common.h"
#include "baselines/recommender.h"
#include "data/synthetic.h"
#include "eval/protocols.h"
#include "graph/metapath_miner.h"

namespace {

using namespace supa;
using namespace supa::bench;

Result<RankingResult> RunWith(Dataset data,
                              std::vector<MetapathSchema> metapaths,
                              const BenchEnv& env) {
  data.metapaths = std::move(metapaths);
  SUPA_ASSIGN_OR_RETURN(TemporalSplit split, SplitTemporal(data));
  SupaConfig model_config;
  model_config.dim = 64;
  InsLearnConfig train_config;
  train_config.max_iters = std::max(1, static_cast<int>(8 * env.effort));
  train_config.valid_interval = 4;
  SupaRecommender supa(model_config, train_config);
  SUPA_RETURN_NOT_OK(supa.Fit(data, split.train));
  EvalConfig eval;
  eval.max_test_edges = env.test_edges;
  return EvaluateLinkPrediction(supa, data, split.test,
                                EdgeRange{0, split.valid.end}, eval);
}

}  // namespace

int main(int argc, char** argv) {
  BenchEnv env;
  Report report(
      "Extension — automatic metapath mining vs hand-written schemas");
  report.SetHeader({"Dataset", "schema set", "#schemas", "H@50", "MRR"});

  for (const char* ds : {"Taobao", "Kuaishou"}) {
    auto data_or = MakePaperDataset(ds, env.scale, 100);
    if (!data_or.ok()) {
      std::fprintf(stderr, "dataset %s failed\n", ds);
      return 1;
    }
    const Dataset& data = data_or.value();

    // (a) hand-written (Table IV).
    auto hand = RunWith(data, data.metapaths, env);

    // (b) mined from the first 30% of the stream.
    auto graph = data.BuildGraphPrefix(data.num_edges() * 3 / 10).value();
    MinerConfig miner;
    miner.num_walks = 8000;
    miner.skeleton_support = 0.005;
    auto mined_schemas = MineMetapaths(graph, miner);
    Result<RankingResult> mined =
        mined_schemas.ok()
            ? RunWith(data, mined_schemas.value(), env)
            : Result<RankingResult>(mined_schemas.status());

    // (c) impoverished: only the first hand-written schema.
    auto poor = RunWith(
        data, std::vector<MetapathSchema>{data.metapaths.front()}, env);

    auto add = [&](const char* label, size_t count,
                   const Result<RankingResult>& r) {
      if (r.ok()) {
        report.AddRow({ds, label, std::to_string(count),
                       Fmt(r.value().hit50), Fmt(r.value().mrr)});
      } else {
        report.AddRow({ds, label, std::to_string(count), "error", "error"});
      }
    };
    add("hand-written", data.metapaths.size(), hand);
    add("mined", mined_schemas.ok() ? mined_schemas.value().size() : 0,
        mined);
    add("single-schema", 1, poor);
    SUPA_LOG(INFO) << "ext_metapaths: finished " << ds;
  }

  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
