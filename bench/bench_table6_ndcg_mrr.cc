// Reproduces Table VI: link-prediction NDCG@10 and MRR for every method on
// every dataset, with the same significance stars as Table V.

#include "bench/link_prediction_grid.h"

int main(int argc, char** argv) {
  using namespace supa;
  using namespace supa::bench;

  BenchEnv env;
  auto cells_or = RunLinkPredictionGrid(AllMethodNames(), env);
  if (!cells_or.ok()) {
    std::fprintf(stderr, "table6 failed: %s\n",
                 cells_or.status().ToString().c_str());
    return 1;
  }
  const auto& cells = cells_or.value();

  Report report("Table VI — link prediction NDCG@10 and MRR");
  std::vector<std::string> header = {"Method"};
  for (const auto& ds : PaperDatasetNames()) {
    header.push_back(ds + " NDCG");
    header.push_back(ds + " MRR");
  }
  report.SetHeader(header);

  MetricFn ndcg = [](const GridCell& c) -> const std::vector<double>& {
    return c.ndcg10;
  };
  MetricFn mrr = [](const GridCell& c) -> const std::vector<double>& {
    return c.mrr;
  };

  for (const auto& method : AllMethodNames()) {
    std::vector<std::string> row = {method};
    for (const auto& ds : PaperDatasetNames()) {
      for (const auto& cell : cells) {
        if (cell.method == method && cell.dataset == ds) {
          row.push_back(MetricCell(cells, cell, ndcg, env.seeds >= 2));
          row.push_back(MetricCell(cells, cell, mrr, env.seeds >= 2));
        }
      }
    }
    report.AddRow(std::move(row));
  }
  report.Print();
  report.MaybeWriteTsv(OutPath(argc, argv));
  report.MaybeWriteJson(JsonOutPath(argc, argv));
  return 0;
}
