#!/usr/bin/env bash
# Wait for a server that prints "... http://127.0.0.1:PORT" to its logfile
# (the admin server's startup line) and echo the port to stdout.
#
#   usage: ci/wait_for_port.sh LOGFILE [PID] [TIMEOUT_S]
#
# When PID is given, a server that dies before publishing a port fails
# fast (with its log tail on stderr) instead of burning the whole timeout.
# Exit codes: 0 = port printed, 1 = process died or timed out, 2 = usage.
set -u

log="${1:-}"
pid="${2:-}"
timeout_s="${3:-20}"
if [ -z "$log" ]; then
  echo "usage: wait_for_port.sh LOGFILE [PID] [TIMEOUT_S]" >&2
  exit 2
fi

tries=$((timeout_s * 5))
for _ in $(seq 1 "$tries"); do
  port=$(grep -o 'http://127\.0\.0\.1:[0-9]*' "$log" 2>/dev/null |
    head -n 1 | grep -o '[0-9]*$' || true)
  if [ -n "$port" ]; then
    echo "$port"
    exit 0
  fi
  if [ -n "$pid" ] && ! kill -0 "$pid" 2>/dev/null; then
    echo "wait_for_port: pid $pid exited before publishing a port" >&2
    [ -f "$log" ] && tail -n 20 "$log" >&2
    exit 1
  fi
  sleep 0.2
done
echo "wait_for_port: no port found in $log after ${timeout_s}s" >&2
[ -f "$log" ] && tail -n 20 "$log" >&2
exit 1
